package monitor

import (
	"errors"
	"math"
	"sync"
	"testing"
)

// scriptScorer returns a scripted sequence of scores; the feature vector's
// first element selects the script position when non-negative.
type scriptScorer struct {
	scores []float64
	pos    int
}

func (s *scriptScorer) MalwareScore(features []float64) (float64, error) {
	if len(features) > 0 && features[0] < 0 {
		return 0, errors.New("scripted failure")
	}
	v := s.scores[s.pos%len(s.scores)]
	s.pos++
	return v, nil
}

// constScorer always returns the same score.
type constScorer float64

func (c constScorer) MalwareScore([]float64) (float64, error) { return float64(c), nil }

func TestConfigValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("nil scorer accepted")
	}
	bad := []Config{
		{Alpha: -1},
		{Alpha: 2},
		{RaiseThreshold: 0.3, ClearThreshold: 0.5},
		{MinSamples: -1},
	}
	for _, cfg := range bad {
		if _, err := New(constScorer(0.5), cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
	if _, err := New(constScorer(0.5), Config{}); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestAlarmRaisesAfterWarmup(t *testing.T) {
	m, err := New(constScorer(0.95), Config{MinSamples: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		ev, err := m.Observe(nil)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Alarm {
			t.Fatalf("alarm raised during warm-up at sample %d", i)
		}
	}
	ev, _ := m.Observe(nil)
	if !ev.Alarm || !ev.Changed {
		t.Fatalf("alarm did not raise after warm-up: %+v", ev)
	}
	ev, _ = m.Observe(nil)
	if !ev.Alarm || ev.Changed {
		t.Fatalf("alarm must stay raised without a new transition: %+v", ev)
	}
	if !m.Alarmed() || m.Samples() != 4 {
		t.Fatal("monitor state wrong")
	}
}

func TestHysteresis(t *testing.T) {
	// Score oscillates around the raise threshold; hysteresis must keep
	// the alarm stable once raised until the score drops well below.
	script := &scriptScorer{scores: []float64{
		0.9, 0.9, 0.9, // raise
		0.55, 0.55, 0.55, // inside the hysteresis band: stays raised
		0.05, 0.05, 0.05, 0.05, // clears
	}}
	m, err := New(script, Config{Alpha: 0.5, RaiseThreshold: 0.6, ClearThreshold: 0.4, MinSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	for i := 0; i < 10; i++ {
		ev, err := m.Observe(nil)
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	if !events[0].Alarm {
		t.Fatal("alarm did not raise immediately with MinSamples=1")
	}
	for i := 3; i < 6; i++ {
		if !events[i].Alarm {
			t.Fatalf("alarm dropped inside hysteresis band at %d", i)
		}
	}
	if events[9].Alarm {
		t.Fatal("alarm did not clear after sustained low scores")
	}
	raises := 0
	for _, ev := range events {
		if ev.Changed && ev.Alarm {
			raises++
		}
	}
	if raises != 1 {
		t.Fatalf("alarm raised %d times, want exactly 1 (hysteresis)", raises)
	}
}

func TestEWMASmoothing(t *testing.T) {
	script := &scriptScorer{scores: []float64{1, 0, 0, 0}}
	m, _ := New(script, Config{Alpha: 0.5, MinSamples: 1})
	ev, _ := m.Observe(nil)
	if ev.Smoothed != 1 {
		t.Fatalf("first sample seeds the EWMA: %v", ev.Smoothed)
	}
	ev, _ = m.Observe(nil)
	if math.Abs(ev.Smoothed-0.5) > 1e-12 {
		t.Fatalf("smoothed=%v, want 0.5", ev.Smoothed)
	}
	ev, _ = m.Observe(nil)
	if math.Abs(ev.Smoothed-0.25) > 1e-12 {
		t.Fatalf("smoothed=%v, want 0.25", ev.Smoothed)
	}
}

func TestObserveError(t *testing.T) {
	m, _ := New(&scriptScorer{scores: []float64{0.5}}, Config{})
	if _, err := m.Observe([]float64{-1}); err == nil {
		t.Fatal("scorer error swallowed")
	}
}

func TestReset(t *testing.T) {
	m, _ := New(constScorer(0.99), Config{MinSamples: 1})
	m.Observe(nil)
	m.Observe(nil)
	if !m.Alarmed() {
		t.Fatal("expected alarm")
	}
	m.Reset()
	if m.Alarmed() || m.Samples() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestTrackerPerAppIsolation(t *testing.T) {
	tr, err := NewTracker(constScorer(0.9), Config{MinSamples: 2})
	if err != nil {
		t.Fatal(err)
	}
	// App A gets enough samples to alarm; app B does not.
	for i := 0; i < 4; i++ {
		if _, err := tr.Observe("a", nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.Observe("b", nil); err != nil {
		t.Fatal(err)
	}
	alarmed := tr.Alarmed()
	if len(alarmed) != 1 || alarmed[0] != "a" {
		t.Fatalf("alarmed=%v, want [a]", alarmed)
	}
	active := tr.Active()
	if len(active) != 2 || active[0] != "a" || active[1] != "b" {
		t.Fatalf("active=%v", active)
	}

	sum, ok := tr.Close("a")
	if !ok {
		t.Fatal("close failed")
	}
	if sum.Samples != 4 || sum.Alarms != 1 || !sum.AlarmActive {
		t.Fatalf("summary %+v", sum)
	}
	if _, ok := tr.Close("a"); ok {
		t.Fatal("double close succeeded")
	}
	if len(tr.Active()) != 1 {
		t.Fatal("close did not remove the app")
	}
}

func TestTrackerValidation(t *testing.T) {
	if _, err := NewTracker(nil, Config{}); err == nil {
		t.Fatal("nil scorer accepted")
	}
	if _, err := NewTracker(constScorer(0), Config{Alpha: 5}); err == nil {
		t.Fatal("bad config accepted")
	}
}

// firstFeatureScorer scores each sample as its first feature value and
// implements the allocation-free BatchScorer fast path.
type firstFeatureScorer struct{ batchCalls int }

func (s *firstFeatureScorer) MalwareScore(features []float64) (float64, error) {
	if features[0] < 0 {
		return 0, errors.New("scripted failure")
	}
	return features[0], nil
}

func (s *firstFeatureScorer) MalwareScoreBatch(dst []float64, samples [][]float64) error {
	s.batchCalls++
	for i, fv := range samples {
		if fv[0] < 0 {
			return errors.New("scripted batch failure")
		}
		dst[i] = fv[0]
	}
	return nil
}

// batchSamples builds a deterministic score ramp crossing both hysteresis
// thresholds so batch events exercise raise and clear transitions.
func batchSamples(n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		v := 0.9
		if i >= n/2 {
			v = 0.05
		}
		out[i] = []float64{v}
	}
	return out
}

func TestObserveBatchMatchesObserve(t *testing.T) {
	samples := batchSamples(20)
	for _, tc := range []struct {
		name   string
		scorer func() Scorer
	}{
		{"batch-scorer", func() Scorer { return &firstFeatureScorer{} }},
		{"fallback", func() Scorer { return constScorer(0.9) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			batched, err := New(tc.scorer(), Config{MinSamples: 2})
			if err != nil {
				t.Fatal(err)
			}
			sequential, err := New(tc.scorer(), Config{MinSamples: 2})
			if err != nil {
				t.Fatal(err)
			}
			dst := make([]Event, len(samples))
			if err := batched.ObserveBatch(dst, samples); err != nil {
				t.Fatal(err)
			}
			for i, fv := range samples {
				want, err := sequential.Observe(fv)
				if err != nil {
					t.Fatal(err)
				}
				if dst[i] != want {
					t.Fatalf("sample %d: batch event %+v, sequential %+v", i, dst[i], want)
				}
			}
			if batched.Samples() != sequential.Samples() || batched.Alarmed() != sequential.Alarmed() {
				t.Fatal("batch and sequential monitors diverged")
			}
		})
	}
}

func TestObserveBatchValidation(t *testing.T) {
	scorer := &firstFeatureScorer{}
	m, err := New(scorer, Config{})
	if err != nil {
		t.Fatal(err)
	}
	samples := batchSamples(4)
	if err := m.ObserveBatch(make([]Event, 2), samples); err == nil {
		t.Fatal("length mismatch accepted")
	}
	bad := [][]float64{{-1}}
	if err := m.ObserveBatch(make([]Event, 1), bad); err == nil {
		t.Fatal("batch scorer error swallowed")
	}
	if scorer.batchCalls == 0 {
		t.Fatal("BatchScorer fast path never taken")
	}
}

func TestObserveZeroAlloc(t *testing.T) {
	m, err := New(&firstFeatureScorer{}, Config{MinSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	fv := []float64{0.3}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := m.Observe(fv); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("Observe allocates %.1f objects/op, want 0", allocs)
	}

	samples := batchSamples(32)
	dst := make([]Event, len(samples))
	if err := m.ObserveBatch(dst, samples); err != nil { // grows the score buffer once
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := m.ObserveBatch(dst, samples); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("ObserveBatch allocates %.1f objects/op, want 0", allocs)
	}
}

func TestTrackerFactoryPerApp(t *testing.T) {
	if _, err := NewTrackerFactory(nil, Config{}); err == nil {
		t.Fatal("nil factory accepted")
	}
	built := 0
	tr, err := NewTrackerFactory(func() Scorer {
		built++
		return &firstFeatureScorer{}
	}, Config{MinSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	fv := []float64{0.9}
	for i := 0; i < 3; i++ {
		if _, err := tr.Observe("a", fv); err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Observe("b", fv); err != nil {
			t.Fatal(err)
		}
	}
	if built != 2 {
		t.Fatalf("factory built %d scorers, want one per app (2)", built)
	}
}

func TestTrackerObserveBatch(t *testing.T) {
	tr, err := NewTrackerFactory(func() Scorer { return &firstFeatureScorer{} }, Config{MinSamples: 2})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := NewTrackerFactory(func() Scorer { return &firstFeatureScorer{} }, Config{MinSamples: 2})
	if err != nil {
		t.Fatal(err)
	}
	samples := batchSamples(16)
	dst := make([]Event, len(samples))
	if err := tr.ObserveBatch("app", dst, samples); err != nil {
		t.Fatal(err)
	}
	for i, fv := range samples {
		want, err := seq.Observe("app", fv)
		if err != nil {
			t.Fatal(err)
		}
		if dst[i] != want {
			t.Fatalf("sample %d: batch event %+v, sequential %+v", i, dst[i], want)
		}
	}
	if err := tr.ObserveBatch("app", dst[:1], samples); err == nil {
		t.Fatal("length mismatch accepted")
	}
	sum, ok := tr.Close("app")
	if !ok || sum.Samples != len(samples) {
		t.Fatalf("summary %+v, want %d samples", sum, len(samples))
	}
	wantSum, _ := seq.Close("app")
	if sum.Alarms != wantSum.Alarms || sum.AlarmActive != wantSum.AlarmActive || sum.MaxSmoothed != wantSum.MaxSmoothed {
		t.Fatalf("batch summary %+v, sequential %+v", sum, wantSum)
	}
}

// BenchmarkObserveBatch measures the burst-observation path with an
// allocation-free batch scorer; the CI benchmark gate watches its ns/op
// and allocs/op.
func BenchmarkObserveBatch(b *testing.B) {
	m, err := New(&firstFeatureScorer{}, Config{})
	if err != nil {
		b.Fatal(err)
	}
	samples := batchSamples(64)
	dst := make([]Event, len(samples))
	if err := m.ObserveBatch(dst, samples); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.ObserveBatch(dst, samples); err != nil {
			b.Fatal(err)
		}
	}
}

func TestTrackerConcurrentApps(t *testing.T) {
	tr, err := NewTracker(constScorer(0.7), Config{MinSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			app := string(rune('a' + g))
			for i := 0; i < 100; i++ {
				if _, err := tr.Observe(app, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if len(tr.Active()) != 8 {
		t.Fatalf("active=%d, want 8", len(tr.Active()))
	}
	for _, app := range tr.Active() {
		sum, _ := tr.Close(app)
		if sum.Samples != 100 {
			t.Fatalf("%s samples=%d", app, sum.Samples)
		}
	}
}
