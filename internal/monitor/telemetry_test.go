package monitor

import (
	"testing"

	"twosmart/internal/telemetry"
)

func TestMonitorTelemetry(t *testing.T) {
	reg := telemetry.New()
	// Script: warm up low, spike to raise the alarm, fall to clear it.
	sc := &scriptScorer{scores: []float64{0.1, 0.1, 0.9, 0.9, 0.9, 0.05, 0.05, 0.05, 0.05}}
	m, err := New(sc, Config{Alpha: 0.9, MinSamples: 2, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	raises, clears := 0, 0
	for i := 0; i < len(sc.scores); i++ {
		ev, err := m.Observe(nil)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Changed {
			if ev.Alarm {
				raises++
			} else {
				clears++
			}
		}
	}
	if raises != 1 || clears != 1 {
		t.Fatalf("script produced raises=%d clears=%d, want 1/1", raises, clears)
	}

	rep := reg.Report("test")
	if got := rep.Counters["monitor_samples_total"]; got != uint64(len(sc.scores)) {
		t.Errorf("monitor_samples_total = %d, want %d", got, len(sc.scores))
	}
	if got := rep.Counters["monitor_alarms_raised_total"]; got != 1 {
		t.Errorf("monitor_alarms_raised_total = %d, want 1", got)
	}
	if got := rep.Counters["monitor_alarms_cleared_total"]; got != 1 {
		t.Errorf("monitor_alarms_cleared_total = %d, want 1", got)
	}
	lat := rep.Histograms["monitor_observe_seconds"]
	if lat.Count != uint64(len(sc.scores)) {
		t.Errorf("monitor_observe_seconds count = %d, want %d", lat.Count, len(sc.scores))
	}
	if lat.Count > 0 && (lat.Min < 0 || lat.Max <= 0) {
		t.Errorf("latency min/max = %v/%v", lat.Min, lat.Max)
	}
}

func TestTrackerActiveGauge(t *testing.T) {
	reg := telemetry.New()
	tr, err := NewTracker(constScorer(0.2), Config{Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	active := func() float64 { return reg.Report("test").Gauges["monitor_active_apps"] }
	if got := active(); got != 0 {
		t.Fatalf("initial active = %v", got)
	}
	for _, app := range []string{"a", "b", "c"} {
		if _, err := tr.Observe(app, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Re-observing an existing app must not bump the gauge again.
	if _, err := tr.Observe("a", nil); err != nil {
		t.Fatal(err)
	}
	if got := active(); got != 3 {
		t.Fatalf("active after 3 apps = %v, want 3", got)
	}
	tr.Close("b")
	if got := active(); got != 2 {
		t.Fatalf("active after close = %v, want 2", got)
	}
	// Closing an unknown app is a no-op.
	tr.Close("zzz")
	if got := active(); got != 2 {
		t.Fatalf("active after bogus close = %v, want 2", got)
	}
}

func TestMonitorNilTelemetryUntimed(t *testing.T) {
	m, err := New(constScorer(0.2), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.timed {
		t.Fatal("monitor with nil telemetry must not be timed")
	}
	if _, err := m.Observe(nil); err != nil {
		t.Fatal(err)
	}
}
