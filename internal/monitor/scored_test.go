package monitor

import (
	"fmt"
	"sync"
	"testing"

	"twosmart/internal/telemetry"
)

// TestObserveScoredMatchesObserve pins that feeding pre-computed scores
// through ObserveScored/ObserveScoredBatch drives the smoothing and alarm
// state machine exactly as Observe would with a scorer producing the same
// scores.
func TestObserveScoredMatchesObserve(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.95, 0.8, 0.2, 0.1, 0.05, 0.99, 0.99, 0.3}
	ref, err := New(&scriptScorer{scores: scores}, Config{MinSamples: 2})
	if err != nil {
		t.Fatal(err)
	}
	single, err := New(constScorer(0), Config{MinSamples: 2})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := New(constScorer(0), Config{MinSamples: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]Event, len(scores))
	for i := range scores {
		ev, err := ref.Observe([]float64{float64(i)})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ev
		if got := single.ObserveScored(scores[i]); got != ev {
			t.Fatalf("sample %d: ObserveScored %+v, Observe %+v", i, got, ev)
		}
	}
	got := make([]Event, len(scores))
	if err := batch.ObserveScoredBatch(got, scores); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: batch %+v, want %+v", i, got[i], want[i])
		}
	}
	if err := batch.ObserveScoredBatch(got[:1], scores); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// TestObserveScoredTelemetry checks the scored path feeds the same
// counters as the scoring path.
func TestObserveScoredTelemetry(t *testing.T) {
	reg := telemetry.New()
	m, err := New(constScorer(0), Config{Alpha: 1, MinSamples: 1, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]Event, 3)
	if err := m.ObserveScoredBatch(dst, []float64{0.9, 0.9, 0.1}); err != nil {
		t.Fatal(err)
	}
	m.ObserveScored(0.95)
	if got := reg.Counter("monitor_samples_total").Value(); got != 4 {
		t.Errorf("monitor_samples_total = %d, want 4", got)
	}
	if got := reg.Counter("monitor_alarms_raised_total").Value(); got != 2 {
		t.Errorf("monitor_alarms_raised_total = %d, want 2", got)
	}
	if got := reg.Counter("monitor_alarms_cleared_total").Value(); got != 1 {
		t.Errorf("monitor_alarms_cleared_total = %d, want 1", got)
	}
}

func TestObserveScoredZeroAlloc(t *testing.T) {
	m, err := New(constScorer(0), Config{})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]Event, 32)
	scores := make([]float64, 32)
	if allocs := testing.AllocsPerRun(100, func() {
		m.ObserveScored(0.5)
		if err := m.ObserveScoredBatch(dst, scores); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("scored paths allocate %.1f objects/op, want 0", allocs)
	}
}

func TestTrackerScorerFor(t *testing.T) {
	tr, err := NewTrackerFactory(func() Scorer { return &firstFeatureScorer{} }, Config{MinSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := tr.ScorerFor("a")
	if a == nil {
		t.Fatal("nil scorer for new app")
	}
	if tr.ScorerFor("a") != a {
		t.Fatal("ScorerFor built a second scorer for the same app")
	}
	if tr.ScorerFor("b") == a {
		t.Fatal("two apps share one scorer instance")
	}
	// The scored path must fold into the same per-app summary as Observe.
	dst := make([]Event, 4)
	if err := tr.ObserveScoredBatch("a", dst, []float64{0.9, 0.9, 0.9, 0.2}); err != nil {
		t.Fatal(err)
	}
	sum, ok := tr.Close("a")
	if !ok || sum.Samples != 4 || sum.Alarms != 1 {
		t.Fatalf("summary %+v, want 4 samples and 1 alarm", sum)
	}
	if err := tr.ObserveScoredBatch("b", dst[:1], []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// statefulScorer mutates private unsynchronized state on every call, so
// any cross-goroutine sharing of one instance is a guaranteed race-report
// under -race.
type statefulScorer struct {
	calls  int
	last   float64
	stride float64
}

func (s *statefulScorer) MalwareScore(features []float64) (float64, error) {
	s.calls++
	s.last += s.stride
	if s.last > 1 {
		s.last = 0
	}
	return s.last, nil
}

func (s *statefulScorer) MalwareScoreBatch(dst []float64, samples [][]float64) error {
	for i := range samples {
		v, _ := s.MalwareScore(samples[i])
		dst[i] = v
	}
	return nil
}

// TestTrackerPerStreamIsolation pins the per-stream isolation model the
// streaming server relies on: many goroutines each own one application
// stream and concurrently drive the full serving mix — ScorerFor,
// ObserveBatch (scorer-invoking) and ObserveScoredBatch — against one
// shared Tracker. Run under -race (CI does) this proves that per-app
// monitors and factory-built scorers are never shared across streams;
// sharing one app between goroutines is the documented unsafe case.
func TestTrackerPerStreamIsolation(t *testing.T) {
	reg := telemetry.New()
	tr, err := NewTrackerFactory(func() Scorer {
		return &statefulScorer{stride: 0.13}
	}, Config{MinSamples: 1, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	const streams = 12
	const rounds = 40
	const burst = 8
	var wg sync.WaitGroup
	errs := make(chan error, streams)
	for g := 0; g < streams; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			app := fmt.Sprintf("stream-%02d", g)
			sc := tr.ScorerFor(app).(*statefulScorer)
			events := make([]Event, burst)
			scores := make([]float64, burst)
			fv := make([]float64, 1)
			samples := make([][]float64, burst)
			for i := range samples {
				samples[i] = fv
			}
			for r := 0; r < rounds; r++ {
				// Half the rounds score through the owned scorer and feed
				// the results back (the server's path); half let the
				// monitor invoke the scorer itself.
				if r%2 == 0 {
					if err := sc.MalwareScoreBatch(scores, samples); err != nil {
						errs <- err
						return
					}
					if err := tr.ObserveScoredBatch(app, events, scores); err != nil {
						errs <- err
						return
					}
				} else if err := tr.ObserveBatch(app, events, samples); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := len(tr.Active()); got != streams {
		t.Fatalf("active apps = %d, want %d", got, streams)
	}
	for _, app := range tr.Active() {
		sc := tr.ScorerFor(app).(*statefulScorer)
		if sc.calls != rounds*burst {
			t.Fatalf("%s: scorer saw %d calls, want %d — an instance leaked across streams", app, sc.calls, rounds*burst)
		}
		sum, _ := tr.Close(app)
		if sum.Samples != rounds*burst {
			t.Fatalf("%s: summary has %d samples, want %d", app, sum.Samples, rounds*burst)
		}
	}
	if got := reg.Counter("monitor_samples_total").Value(); got != streams*rounds*burst {
		t.Errorf("monitor_samples_total = %d, want %d", got, streams*rounds*burst)
	}
}
