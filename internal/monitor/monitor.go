// Package monitor is the run-time deployment layer around a trained
// detector: it turns the noisy per-10 ms-sample malware scores of a
// 2SMaRT detector into stable alarms using exponential smoothing and
// hysteresis, and tracks many concurrently running applications. This is
// the piece a system integrator would connect to the counter-sampling
// interrupt on real hardware.
package monitor

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"twosmart/internal/telemetry"
)

// Scorer produces a malware-ness score in [0,1] for one sample.
// *core.Detector satisfies this interface via MalwareScore, and
// *core.CompiledDetector is its allocation-free lowering — wrap the
// compiled form (see monitor.NewTrackerFactory and the twosmart facade)
// when the monitor sits on the 10 ms sampling hot path.
type Scorer interface {
	MalwareScore(features []float64) (float64, error)
}

// BatchScorer is a Scorer with an allocation-free batch path: dst[i]
// receives the score of samples[i]. *core.CompiledDetector implements it;
// Monitor.ObserveBatch uses it when available.
type BatchScorer interface {
	Scorer
	MalwareScoreBatch(dst []float64, samples [][]float64) error
}

// Config tunes the smoothing and alarm behaviour.
type Config struct {
	// Alpha is the EWMA coefficient in (0,1]; higher reacts faster
	// (default 0.3).
	Alpha float64
	// RaiseThreshold and ClearThreshold implement hysteresis: the alarm
	// raises when the smoothed score exceeds RaiseThreshold and clears
	// only when it falls below ClearThreshold (defaults 0.6 and 0.4).
	RaiseThreshold float64
	ClearThreshold float64
	// MinSamples is the warm-up period before any alarm can raise
	// (default 3 samples = 30 ms).
	MinSamples int
	// Telemetry, when non-nil, records run-time detection metrics: the
	// monitor_observe_seconds latency histogram, the sample/alarm
	// counters, and (for Tracker) the monitor_active_apps gauge. When nil
	// — the default — the Observe hot path pays only a branch (see
	// BenchmarkObserve in internal/telemetry).
	Telemetry *telemetry.Registry
}

func (c Config) fill() (Config, error) {
	if c.Alpha == 0 {
		c.Alpha = 0.3
	}
	if c.Alpha < 0 || c.Alpha > 1 {
		return c, fmt.Errorf("monitor: alpha %v outside (0,1]", c.Alpha)
	}
	if c.RaiseThreshold == 0 {
		c.RaiseThreshold = 0.6
	}
	if c.ClearThreshold == 0 {
		c.ClearThreshold = 0.4
	}
	if c.ClearThreshold > c.RaiseThreshold {
		return c, fmt.Errorf("monitor: clear threshold %v above raise threshold %v", c.ClearThreshold, c.RaiseThreshold)
	}
	if c.MinSamples == 0 {
		c.MinSamples = 3
	}
	if c.MinSamples < 0 {
		return c, fmt.Errorf("monitor: negative warm-up %d", c.MinSamples)
	}
	return c, nil
}

// Event is the monitor's output for one observed sample.
type Event struct {
	// Sample is the 0-based sample index within this monitor.
	Sample int
	// Score is the detector's raw malware score for this sample.
	Score float64
	// Smoothed is the EWMA of scores so far.
	Smoothed float64
	// Alarm reports whether the malware alarm is currently raised.
	Alarm bool
	// Changed reports whether this sample raised or cleared the alarm.
	Changed bool
}

// Monitor smooths one application's score stream.
type Monitor struct {
	scorer  Scorer
	cfg     Config
	samples int
	ewma    float64
	alarm   bool
	scores  []float64 // ObserveBatch score buffer, grown to the batch size

	// Telemetry instruments, populated only when cfg.Telemetry is set;
	// timed guards every use so the disabled hot path costs one branch.
	timed    bool
	latency  telemetry.Histogram
	observed telemetry.Counter
	raised   telemetry.Counter
	cleared  telemetry.Counter
}

// New builds a monitor over a scorer.
func New(s Scorer, cfg Config) (*Monitor, error) {
	if s == nil {
		return nil, errors.New("monitor: nil scorer")
	}
	filled, err := cfg.fill()
	if err != nil {
		return nil, err
	}
	return newMonitor(s, filled), nil
}

// newMonitor builds a monitor from an already-validated config.
func newMonitor(s Scorer, filled Config) *Monitor {
	m := &Monitor{scorer: s, cfg: filled}
	if reg := filled.Telemetry; reg.Enabled() {
		m.timed = true
		m.latency = reg.Histogram("monitor_observe_seconds", telemetry.LatencyBuckets)
		m.observed = reg.Counter("monitor_samples_total")
		m.raised = reg.Counter("monitor_alarms_raised_total")
		m.cleared = reg.Counter("monitor_alarms_cleared_total")
	}
	return m
}

// Observe feeds one sample and returns the resulting event.
//
// Aliasing contract: features is caller-owned — it is only read during the
// call, never retained and never modified, so the caller may reuse one
// buffer across the whole sample stream (the sampling interrupt path does
// exactly that). With telemetry disabled (the default) and a compiled
// scorer (see core.Detector.Compile), Observe performs zero heap
// allocations per sample; BenchmarkObserve in this package and in
// internal/telemetry pin that contract.
func (m *Monitor) Observe(features []float64) (Event, error) {
	var t0 time.Time
	if m.timed {
		t0 = time.Now()
	}
	score, err := m.scorer.MalwareScore(features)
	if err != nil {
		return Event{}, err
	}
	// The smoothing/alarm logic is step() written out inline: step costs
	// more than the compiler's inlining budget, and the call overhead is
	// measurable on this path (BenchmarkObserve pins disabled-telemetry
	// Observe within a few ns of an uninstrumented baseline).
	if m.samples == 0 {
		m.ewma = score
	} else {
		m.ewma = m.cfg.Alpha*score + (1-m.cfg.Alpha)*m.ewma
	}
	ev := Event{Sample: m.samples, Score: score, Smoothed: m.ewma}
	m.samples++

	prev := m.alarm
	if m.samples >= m.cfg.MinSamples && !m.alarm && m.ewma > m.cfg.RaiseThreshold {
		m.alarm = true
	} else if m.alarm && m.ewma < m.cfg.ClearThreshold {
		m.alarm = false
	}
	ev.Alarm = m.alarm
	ev.Changed = m.alarm != prev
	if m.timed {
		m.latency.ObserveDuration(time.Since(t0))
		m.observed.Inc()
		m.countTransition(ev)
	}
	return ev, nil
}

// step advances the EWMA and alarm state machine by one scored sample; it
// must mirror the inline copy in Observe exactly (TestObserveBatchMatchesObserve
// compares the two paths event by event).
func (m *Monitor) step(score float64) Event {
	if m.samples == 0 {
		m.ewma = score
	} else {
		m.ewma = m.cfg.Alpha*score + (1-m.cfg.Alpha)*m.ewma
	}
	ev := Event{Sample: m.samples, Score: score, Smoothed: m.ewma}
	m.samples++

	prev := m.alarm
	if m.samples >= m.cfg.MinSamples && !m.alarm && m.ewma > m.cfg.RaiseThreshold {
		m.alarm = true
	} else if m.alarm && m.ewma < m.cfg.ClearThreshold {
		m.alarm = false
	}
	ev.Alarm = m.alarm
	ev.Changed = m.alarm != prev
	return ev
}

func (m *Monitor) countTransition(ev Event) {
	if !ev.Changed {
		return
	}
	if ev.Alarm {
		m.raised.Inc()
	} else {
		m.cleared.Inc()
	}
}

// ObserveBatch feeds a burst of samples in order, writing the per-sample
// events into dst; dst and samples must have equal length. When the scorer
// implements BatchScorer (a compiled detector does) the scores are
// produced through its allocation-free batch path, so the steady state
// allocates nothing once the internal score buffer has grown to the batch
// size. The same aliasing contract as Observe applies to every sample
// buffer. With telemetry enabled the batch records one
// monitor_observe_seconds observation for the whole burst.
func (m *Monitor) ObserveBatch(dst []Event, samples [][]float64) error {
	if len(dst) != len(samples) {
		return fmt.Errorf("monitor: ObserveBatch dst has %d slots, want %d", len(dst), len(samples))
	}
	bs, ok := m.scorer.(BatchScorer)
	if !ok {
		for i, fv := range samples {
			ev, err := m.Observe(fv)
			if err != nil {
				return err
			}
			dst[i] = ev
		}
		return nil
	}
	var t0 time.Time
	if m.timed {
		t0 = time.Now()
	}
	if cap(m.scores) < len(samples) {
		m.scores = make([]float64, len(samples))
	}
	scores := m.scores[:len(samples)]
	if err := bs.MalwareScoreBatch(scores, samples); err != nil {
		return err
	}
	for i, score := range scores {
		dst[i] = m.step(score)
	}
	if m.timed {
		m.latency.ObserveDuration(time.Since(t0))
		m.observed.Add(uint64(len(samples)))
		for _, ev := range dst {
			m.countTransition(ev)
		}
	}
	return nil
}

// ObserveScored advances the smoothing and alarm state machine with a
// score that was already computed elsewhere; the monitor's scorer is not
// invoked. This is the serving-layer path: the server produces full
// verdicts and malware scores in one fused batch evaluation
// (core.CompiledDetector.DetectScoredBatch) and feeds the scores here so
// each sample is scored exactly once. The same single-goroutine ownership
// rules as Observe apply.
func (m *Monitor) ObserveScored(score float64) Event {
	ev := m.step(score)
	if m.timed {
		m.observed.Inc()
		m.countTransition(ev)
	}
	return ev
}

// ObserveScoredBatch feeds a burst of pre-computed scores in order,
// writing the per-sample events into dst; dst and scores must have equal
// length. Like ObserveScored it never invokes the scorer and performs no
// heap allocations.
func (m *Monitor) ObserveScoredBatch(dst []Event, scores []float64) error {
	if len(dst) != len(scores) {
		return fmt.Errorf("monitor: ObserveScoredBatch dst has %d slots, want %d", len(dst), len(scores))
	}
	for i, score := range scores {
		dst[i] = m.step(score)
	}
	if m.timed {
		m.observed.Add(uint64(len(scores)))
		for _, ev := range dst {
			m.countTransition(ev)
		}
	}
	return nil
}

// Samples returns how many samples this monitor has observed.
func (m *Monitor) Samples() int { return m.samples }

// Alarmed reports the current alarm state.
func (m *Monitor) Alarmed() bool { return m.alarm }

// Reset returns the monitor to its initial state.
func (m *Monitor) Reset() {
	m.samples = 0
	m.ewma = 0
	m.alarm = false
}

// Summary aggregates one application's monitoring session.
type Summary struct {
	App         string
	Samples     int
	Alarms      int // number of raise transitions
	AlarmActive bool
	MaxSmoothed float64
}

// Tracker monitors many applications concurrently, one Monitor per
// application key.
//
// Concurrency contract (the per-stream isolation model): the Tracker's
// own maps and summaries are mutex-guarded, so goroutines may call any
// method for *different* application keys concurrently — this is how the
// streaming server fans scoring out across streams. But each
// application's Monitor (and the scorer the factory created for it) is
// unsynchronized: concurrent Observe/ObserveBatch/ObserveScored* calls
// for the *same* application key race on the EWMA state and the scorer's
// scratch space. Every application stream must therefore be owned by one
// goroutine at a time; TestTrackerPerStreamIsolation pins the safe side
// of this contract under the race detector.
type Tracker struct {
	factory func() Scorer
	cfg     Config
	active  telemetry.Gauge // monitor_active_apps; nil-safe no-op when untracked

	mu       sync.Mutex
	monitors map[string]*Monitor
	stats    map[string]*Summary
}

// NewTracker builds a multi-application tracker over a single shared
// scorer. The scorer must be safe for concurrent use when different
// applications are observed from different goroutines — a compiled
// detector is not; use NewTrackerFactory for those.
func NewTracker(s Scorer, cfg Config) (*Tracker, error) {
	if s == nil {
		return nil, errors.New("monitor: nil scorer")
	}
	return NewTrackerFactory(func() Scorer { return s }, cfg)
}

// NewTrackerFactory builds a tracker that calls factory once per tracked
// application, so each application's monitor owns an independent scorer.
// This is how compiled detectors — which own scratch space and are not
// concurrent-safe — are deployed across many applications: pass
// func() monitor.Scorer { return det.Compile() } and every application
// gets its own allocation-free instance.
func NewTrackerFactory(factory func() Scorer, cfg Config) (*Tracker, error) {
	if factory == nil {
		return nil, errors.New("monitor: nil scorer factory")
	}
	filled, err := cfg.fill()
	if err != nil {
		return nil, err
	}
	return &Tracker{
		factory:  factory,
		cfg:      filled,
		active:   filled.Telemetry.Gauge("monitor_active_apps"),
		monitors: make(map[string]*Monitor),
		stats:    make(map[string]*Summary),
	}, nil
}

// monitorFor returns (creating if needed) the monitor and summary for app.
func (t *Tracker) monitorFor(app string) (*Monitor, *Summary) {
	t.mu.Lock()
	defer t.mu.Unlock()
	m, ok := t.monitors[app]
	if !ok {
		m = newMonitor(t.factory(), t.cfg)
		t.monitors[app] = m
		t.stats[app] = &Summary{App: app}
		t.active.Add(1)
	}
	return m, t.stats[app]
}

// record folds one event into an application's session summary.
func (t *Tracker) record(st *Summary, ev Event) {
	st.Samples++
	if ev.Changed && ev.Alarm {
		st.Alarms++
	}
	st.AlarmActive = ev.Alarm
	if ev.Smoothed > st.MaxSmoothed {
		st.MaxSmoothed = ev.Smoothed
	}
}

// Observe feeds one sample for the given application. The features slice
// is only read during the call (see Monitor.Observe for the full aliasing
// contract), so callers may reuse one buffer across all applications.
func (t *Tracker) Observe(app string, features []float64) (Event, error) {
	m, st := t.monitorFor(app)

	// Per-monitor observation is not concurrent for the same app key;
	// callers stream one app's samples in order. Cross-app calls only
	// share the maps guarded in monitorFor and the stats updated below.
	ev, err := m.Observe(features)
	if err != nil {
		return Event{}, err
	}
	t.mu.Lock()
	t.record(st, ev)
	t.mu.Unlock()
	return ev, nil
}

// ObserveBatch feeds a burst of samples for one application, writing the
// per-sample events into dst (dst and samples must have equal length).
// Scoring goes through the monitor's batch path, so with a compiled
// scorer the steady state allocates nothing.
func (t *Tracker) ObserveBatch(app string, dst []Event, samples [][]float64) error {
	m, st := t.monitorFor(app)
	if err := m.ObserveBatch(dst, samples); err != nil {
		return err
	}
	t.mu.Lock()
	for _, ev := range dst {
		t.record(st, ev)
	}
	t.mu.Unlock()
	return nil
}

// ObserveScoredBatch feeds a burst of pre-computed scores for one
// application (see Monitor.ObserveScoredBatch), writing the per-sample
// events into dst and folding them into the application's summary. The
// application's scorer is not invoked; callers that scored the samples
// through the instance returned by ScorerFor pay one evaluation per
// sample in total.
func (t *Tracker) ObserveScoredBatch(app string, dst []Event, scores []float64) error {
	m, st := t.monitorFor(app)
	if err := m.ObserveScoredBatch(dst, scores); err != nil {
		return err
	}
	t.mu.Lock()
	for _, ev := range dst {
		t.record(st, ev)
	}
	t.mu.Unlock()
	return nil
}

// OpenWith creates app's monitor around an explicit scorer instead of
// the tracker's factory. The streaming server uses this to bind each
// stream to the model generation that was active when the stream opened:
// it compiles the current detector itself and registers it here, so a
// later hot swap changes what the factory would produce without touching
// streams already in flight. It returns false — leaving the existing
// monitor and scorer in place — when app is already tracked. The scorer
// is subject to the same per-stream ownership contract as the rest of
// the Tracker API.
func (t *Tracker) OpenWith(app string, s Scorer) bool {
	if s == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.monitors[app]; ok {
		return false
	}
	t.monitors[app] = newMonitor(s, t.cfg)
	t.stats[app] = &Summary{App: app}
	t.active.Add(1)
	return true
}

// ScorerFor returns the scorer instance owned by app's monitor, creating
// the monitor (through the tracker's factory) on first use. It exists so
// a caller that needs richer per-sample output than a bare score — the
// streaming server wants full verdicts via the compiled detector's fused
// batch path — can reach the same per-application instance the tracker
// owns instead of compiling a second one. The returned scorer is subject
// to the per-stream ownership contract in the Tracker doc comment.
func (t *Tracker) ScorerFor(app string) Scorer {
	m, _ := t.monitorFor(app)
	return m.scorer
}

// Close removes an application and returns its session summary.
func (t *Tracker) Close(app string) (Summary, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.stats[app]
	if !ok {
		return Summary{}, false
	}
	delete(t.monitors, app)
	delete(t.stats, app)
	t.active.Add(-1)
	return *st, true
}

// Active returns the currently tracked application keys, sorted.
func (t *Tracker) Active() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.monitors))
	for app := range t.monitors {
		out = append(out, app)
	}
	sort.Strings(out)
	return out
}

// Alarmed returns the tracked applications whose alarm is currently raised,
// sorted.
func (t *Tracker) Alarmed() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []string
	for app, st := range t.stats {
		if st.AlarmActive {
			out = append(out, app)
		}
	}
	sort.Strings(out)
	return out
}
