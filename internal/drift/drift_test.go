package drift

import (
	"encoding/json"
	"math"
	"math/rand"
	"sync"
	"testing"

	"twosmart/internal/dataset"
	"twosmart/internal/telemetry"
)

// gaussianSet builds a dataset whose features are N(mean, std) draws.
func gaussianSet(t *testing.T, n int, means, stds []float64, seed int64) *dataset.Dataset {
	t.Helper()
	names := make([]string, len(means))
	for i := range names {
		names[i] = "f" + string(rune('a'+i))
	}
	d := dataset.New(names, []string{"benign", "malware"})
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		fv := make([]float64, len(means))
		for f := range fv {
			fv[f] = means[f] + stds[f]*rng.NormFloat64()
		}
		if err := d.Add(dataset.Instance{Features: fv, Label: i % 2}); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func feed(t *testing.T, m *Monitor, d *dataset.Dataset) {
	t.Helper()
	batch := make([][]float64, 0, 64)
	for _, ins := range d.Instances {
		batch = append(batch, ins.Features)
		if len(batch) == cap(batch) {
			if err := m.ObserveBatch(batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if err := m.ObserveBatch(batch); err != nil {
		t.Fatal(err)
	}
}

// TestNoDriftOnSameDistribution pins the quiet case: live traffic drawn
// from the training distribution stays well below the alert threshold.
func TestNoDriftOnSameDistribution(t *testing.T) {
	means, stds := []float64{10, 50, 3}, []float64{2, 10, 1}
	train := gaussianSet(t, 4000, means, stds, 1)
	ref, err := BuildReference(train, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitor(ref, Config{})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, m, gaussianSet(t, 4000, means, stds, 2))
	rep := m.Snapshot()
	if rep.Warmup {
		t.Fatalf("still in warmup after %d samples", rep.Samples)
	}
	if rep.Alert || rep.Recommendation != "ok" {
		t.Fatalf("false alarm: %+v", rep)
	}
	if rep.MaxPSI > 0.1 {
		t.Fatalf("same-distribution PSI %.3f above the stable band", rep.MaxPSI)
	}
	for _, fd := range rep.Features {
		if math.Abs(fd.ZScore) > 0.5 {
			t.Fatalf("feature %s z-score %.2f for unshifted traffic", fd.Feature, fd.ZScore)
		}
	}
}

// TestDriftDetected pins the alert case: a 3-sigma mean shift on one
// feature must push its PSI over the threshold and flag
// retrain-or-rollback, while unshifted features stay quiet.
func TestDriftDetected(t *testing.T) {
	means, stds := []float64{10, 50, 3}, []float64{2, 10, 1}
	train := gaussianSet(t, 4000, means, stds, 3)
	ref, err := BuildReference(train, 0)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	m, err := NewMonitor(ref, Config{Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	shifted := append([]float64(nil), means...)
	shifted[1] += 3 * stds[1]
	feed(t, m, gaussianSet(t, 4000, shifted, stds, 4))
	rep := m.Snapshot()
	if !rep.Alert || rep.Recommendation != "retrain-or-rollback" {
		t.Fatalf("3-sigma shift not flagged: %+v", rep)
	}
	if rep.Features[1].PSI <= 0.25 {
		t.Fatalf("shifted feature PSI %.3f not above threshold", rep.Features[1].PSI)
	}
	if rep.Features[1].ZScore < 2 {
		t.Fatalf("shifted feature z-score %.2f, want near 3", rep.Features[1].ZScore)
	}
	if rep.Features[0].PSI > 0.1 {
		t.Fatalf("unshifted feature PSI %.3f polluted by the shifted one", rep.Features[0].PSI)
	}

	// The gauges mirror the snapshot.
	if g := reg.Gauge("drift_alert").Value(); g != 1 {
		t.Fatalf("drift_alert gauge = %v, want 1", g)
	}
	name := telemetry.Label("drift_psi", "feature", ref.Features[1])
	if g := reg.Gauge(name).Value(); g != rep.Features[1].PSI {
		t.Fatalf("%s gauge = %v, want %v", name, g, rep.Features[1].PSI)
	}
	if c := reg.Counter("drift_samples_total").Value(); c != rep.Samples {
		t.Fatalf("drift_samples_total = %d, want %d", c, rep.Samples)
	}
}

// TestWarmupNeverAlerts pins that a handful of wild samples cannot alert
// before MinSamples.
func TestWarmupNeverAlerts(t *testing.T) {
	train := gaussianSet(t, 1000, []float64{5}, []float64{1}, 5)
	ref, err := BuildReference(train, 8)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitor(ref, Config{MinSamples: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := m.Observe([]float64{1e9}); err != nil {
			t.Fatal(err)
		}
	}
	rep := m.Snapshot()
	if !rep.Warmup || rep.Alert || rep.Recommendation != "warmup" {
		t.Fatalf("warmup report %+v", rep)
	}
}

// TestReferenceRoundTrip checks JSON round-trip plus Validate on the
// happy path and a corrupted copy.
func TestReferenceRoundTrip(t *testing.T) {
	train := gaussianSet(t, 500, []float64{1, 2}, []float64{1, 1}, 6)
	ref, err := BuildReference(train, 6)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	var back Reference
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped reference invalid: %v", err)
	}
	back.Counts[0] = back.Counts[0][:1]
	if err := back.Validate(); err == nil {
		t.Fatal("truncated counts passed Validate")
	}
}

// TestObserveWidthMismatch pins the error for a sample of the wrong
// width.
func TestObserveWidthMismatch(t *testing.T) {
	train := gaussianSet(t, 300, []float64{1, 2}, []float64{1, 1}, 7)
	ref, err := BuildReference(train, 4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitor(ref, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Observe([]float64{1}); err == nil {
		t.Fatal("width mismatch accepted")
	}
}

// TestConcurrentObserve drives the monitor from many goroutines under
// the race detector; the sample count must come out exact.
func TestConcurrentObserve(t *testing.T) {
	train := gaussianSet(t, 500, []float64{3, 4}, []float64{1, 2}, 8)
	ref, err := BuildReference(train, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitor(ref, Config{})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := gaussianSet(t, per, []float64{3, 4}, []float64{1, 2}, int64(100+w))
			for _, ins := range src.Instances {
				if err := m.Observe(ins.Features); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if rep := m.Snapshot(); rep.Samples != workers*per {
		t.Fatalf("samples = %d, want %d", rep.Samples, workers*per)
	}
}
