// Package drift watches the run-time HPC feature distribution for
// divergence from the distribution a model was trained on. HMDs degrade
// sharply under distribution shift (malware families evolve, benign
// workload mixes change), and the training-time baseline is the right
// reference for spotting it — so every published model carries a
// Reference (per-feature histogram plus moments, persisted in the
// registry manifest) and the serving tier streams live samples through a
// Monitor that reports, per HPC feature:
//
//   - PSI, the Population Stability Index between the live histogram and
//     the training reference (< 0.1 stable, 0.1–0.25 moderate shift,
//     > 0.25 actionable shift by the usual credit-scoring convention);
//   - an EWMA z-score, how far the exponentially smoothed live mean has
//     wandered from the training mean in training-stdev units.
//
// Crossing the configured PSI alert threshold flags the model for
// retraining or rollback; the serving tier exports the per-feature PSI
// and z-score gauges through telemetry and folds the verdict into the
// JSON run report.
package drift

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"

	"twosmart/internal/dataset"
	"twosmart/internal/telemetry"
)

// DefaultBins is the reference histogram resolution when BuildReference
// is called with bins <= 0. Coarse on purpose: PSI over ~a dozen buckets
// is the textbook setup, and fewer buckets need fewer live samples to
// fill.
const DefaultBins = 12

// Reference is the training-time feature distribution a Monitor compares
// live traffic against. It is JSON-serialisable and small (edges plus
// counts per feature), so the model registry embeds it in the manifest
// entry next to the blob it describes.
type Reference struct {
	// Features names the columns, in the model's input order.
	Features []string `json:"features"`
	// Edges[f] holds the interior bucket boundaries of feature f: values
	// below Edges[f][0] fall into bucket 0, values >= the last edge into
	// the overflow bucket, so every feature has len(Edges[f])+1 buckets.
	Edges [][]float64 `json:"edges"`
	// Counts[f][b] is the training-sample count of feature f, bucket b;
	// len(Counts[f]) == len(Edges[f])+1.
	Counts [][]uint64 `json:"counts"`
	// Mean and Std are the training-time moments, for the EWMA z-score.
	Mean []float64 `json:"mean"`
	Std  []float64 `json:"std"`
}

// BuildReference derives the reference distribution from a training
// dataset: per feature, bins-quantile histogram edges plus mean and
// standard deviation. bins <= 0 uses DefaultBins.
func BuildReference(d *dataset.Dataset, bins int) (*Reference, error) {
	if d == nil || d.Len() == 0 {
		return nil, errors.New("drift: empty reference dataset")
	}
	if bins <= 0 {
		bins = DefaultBins
	}
	if bins < 2 {
		return nil, fmt.Errorf("drift: %d bins below the minimum 2", bins)
	}
	nf := d.NumFeatures()
	ref := &Reference{
		Features: append([]string(nil), d.FeatureNames...),
		Edges:    make([][]float64, nf),
		Counts:   make([][]uint64, nf),
		Mean:     make([]float64, nf),
		Std:      make([]float64, nf),
	}
	for f := 0; f < nf; f++ {
		col := d.Column(f)
		ref.Mean[f], ref.Std[f] = moments(col)
		ref.Edges[f] = quantileEdges(col, bins)
		counts := make([]uint64, len(ref.Edges[f])+1)
		for _, v := range col {
			counts[bucketOf(ref.Edges[f], v)]++
		}
		ref.Counts[f] = counts
	}
	return ref, nil
}

// NumFeatures returns the feature width the reference describes.
func (r *Reference) NumFeatures() int { return len(r.Features) }

// Validate checks the reference's internal consistency (the registry
// calls it when decoding a manifest, so a hand-edited or corrupted entry
// fails on load rather than at serving time).
func (r *Reference) Validate() error {
	n := len(r.Features)
	if n == 0 {
		return errors.New("drift: reference has no features")
	}
	if len(r.Edges) != n || len(r.Counts) != n || len(r.Mean) != n || len(r.Std) != n {
		return fmt.Errorf("drift: reference arrays disagree on width (features=%d edges=%d counts=%d mean=%d std=%d)",
			n, len(r.Edges), len(r.Counts), len(r.Mean), len(r.Std))
	}
	for f := 0; f < n; f++ {
		if len(r.Edges[f]) == 0 {
			return fmt.Errorf("drift: feature %q has no histogram edges", r.Features[f])
		}
		if len(r.Counts[f]) != len(r.Edges[f])+1 {
			return fmt.Errorf("drift: feature %q has %d buckets for %d edges, want %d",
				r.Features[f], len(r.Counts[f]), len(r.Edges[f]), len(r.Edges[f])+1)
		}
		var total uint64
		for b, e := range r.Edges[f] {
			if math.IsNaN(e) || math.IsInf(e, 0) {
				return fmt.Errorf("drift: feature %q edge %d is %v", r.Features[f], b, e)
			}
			if b > 0 && e < r.Edges[f][b-1] {
				return fmt.Errorf("drift: feature %q edges not ascending at %d", r.Features[f], b)
			}
		}
		for _, c := range r.Counts[f] {
			total += c
		}
		if total == 0 {
			return fmt.Errorf("drift: feature %q reference histogram is empty", r.Features[f])
		}
	}
	return nil
}

// moments returns the mean and (population) standard deviation of col.
func moments(col []float64) (mean, std float64) {
	for _, v := range col {
		mean += v
	}
	mean /= float64(len(col))
	var ss float64
	for _, v := range col {
		d := v - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(col)))
}

// quantileEdges returns up to bins-1 ascending interior edges at the
// column's quantiles, deduplicated (heavily repeated values — HPC
// features are often zero-inflated — collapse edges).
func quantileEdges(col []float64, bins int) []float64 {
	sorted := append([]float64(nil), col...)
	slices.Sort(sorted)
	edges := make([]float64, 0, bins-1)
	for b := 1; b < bins; b++ {
		idx := b * len(sorted) / bins
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		e := sorted[idx]
		if len(edges) == 0 || e > edges[len(edges)-1] {
			edges = append(edges, e)
		}
	}
	if len(edges) == 0 {
		// A constant column still needs one edge so there are two buckets:
		// "the constant" and "anything above it".
		edges = append(edges, sorted[len(sorted)-1])
	}
	return edges
}

// bucketOf returns the histogram bucket of v: binary search over the
// interior edges, values >= the last edge land in the overflow bucket.
func bucketOf(edges []float64, v float64) int {
	lo, hi := 0, len(edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if v < edges[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Config tunes a drift monitor.
type Config struct {
	// AlertPSI is the per-feature PSI above which the monitor recommends
	// retrain-or-rollback (default 0.25, the conventional "significant
	// shift" threshold).
	AlertPSI float64
	// MinSamples is how many live samples must accumulate before PSI and
	// the alert are considered meaningful (default 200). Snapshots taken
	// earlier report Warmup=true and never alert.
	MinSamples int
	// Alpha is the EWMA coefficient for the per-feature smoothed mean and
	// variance in (0,1] (default 0.02 — slow on purpose: drift is a
	// minutes-scale signal, not a per-sample one).
	Alpha float64
	// RecomputeEvery re-derives PSI and refreshes the telemetry gauges
	// every that many observed samples (default 256); Snapshot always
	// recomputes.
	RecomputeEvery int
	// Telemetry, when non-nil, exports drift_psi{feature=...} and
	// drift_zscore{feature=...} gauges, the drift_alert gauge (0/1) and
	// the drift_samples_total counter.
	Telemetry *telemetry.Registry
}

func (c Config) fill() (Config, error) {
	if c.AlertPSI == 0 {
		c.AlertPSI = 0.25
	}
	if c.AlertPSI < 0 {
		return c, fmt.Errorf("drift: negative alert threshold %v", c.AlertPSI)
	}
	if c.MinSamples == 0 {
		c.MinSamples = 200
	}
	if c.MinSamples < 1 {
		return c, fmt.Errorf("drift: min samples %d below 1", c.MinSamples)
	}
	if c.Alpha == 0 {
		c.Alpha = 0.02
	}
	if c.Alpha < 0 || c.Alpha > 1 {
		return c, fmt.Errorf("drift: alpha %v outside (0,1]", c.Alpha)
	}
	if c.RecomputeEvery == 0 {
		c.RecomputeEvery = 256
	}
	if c.RecomputeEvery < 1 {
		return c, fmt.Errorf("drift: recompute interval %d below 1", c.RecomputeEvery)
	}
	return c, nil
}

// FeatureDrift is one feature's drift state inside a Report.
type FeatureDrift struct {
	Feature string  `json:"feature"`
	PSI     float64 `json:"psi"`
	ZScore  float64 `json:"zscore"` // EWMA-mean displacement in training stdevs
}

// Report is a point-in-time drift assessment.
type Report struct {
	Samples  uint64         `json:"samples"`
	Warmup   bool           `json:"warmup"` // below MinSamples; PSI not yet meaningful
	Features []FeatureDrift `json:"features"`
	MaxPSI   float64        `json:"max_psi"`
	// Alert is true once any feature's PSI exceeds the configured
	// threshold after warm-up; the serving tier surfaces it as
	// "retrain/rollback" in the run report.
	Alert bool `json:"alert"`
	// Recommendation is "ok", "warmup" or "retrain-or-rollback".
	Recommendation string `json:"recommendation"`
}

// Monitor accumulates live samples against a Reference. All methods are
// safe for concurrent use — many per-stream scoring goroutines feed one
// monitor — with a single mutex; callers on the hot path batch through
// ObserveBatch so the lock is taken once per micro-batch.
type Monitor struct {
	ref *Reference
	cfg Config

	mu       sync.Mutex
	samples  uint64
	counts   [][]uint64 // live histogram, same shape as ref.Counts
	ewmaMean []float64
	ewmaVar  []float64
	seeded   bool

	psi    []telemetry.Gauge
	zsc    []telemetry.Gauge
	alertG telemetry.Gauge
	obs    telemetry.Counter
}

// NewMonitor builds a monitor over a validated reference.
func NewMonitor(ref *Reference, cfg Config) (*Monitor, error) {
	if ref == nil {
		return nil, errors.New("drift: nil reference")
	}
	if err := ref.Validate(); err != nil {
		return nil, err
	}
	filled, err := cfg.fill()
	if err != nil {
		return nil, err
	}
	m := &Monitor{
		ref:      ref,
		cfg:      filled,
		counts:   make([][]uint64, len(ref.Features)),
		ewmaMean: make([]float64, len(ref.Features)),
		ewmaVar:  make([]float64, len(ref.Features)),
	}
	for f := range m.counts {
		m.counts[f] = make([]uint64, len(ref.Counts[f]))
	}
	if reg := filled.Telemetry; reg.Enabled() {
		m.psi = make([]telemetry.Gauge, len(ref.Features))
		m.zsc = make([]telemetry.Gauge, len(ref.Features))
		for f, name := range ref.Features {
			m.psi[f] = reg.Gauge(telemetry.Label("drift_psi", "feature", name))
			m.zsc[f] = reg.Gauge(telemetry.Label("drift_zscore", "feature", name))
		}
		m.alertG = reg.Gauge("drift_alert")
		m.obs = reg.Counter("drift_samples_total")
	}
	return m, nil
}

// Reference returns the reference the monitor compares against.
func (m *Monitor) Reference() *Reference { return m.ref }

// NumFeatures returns the feature width the monitor expects per sample.
func (m *Monitor) NumFeatures() int { return m.ref.NumFeatures() }

// Observe folds one live sample into the drift state. features must have
// the reference's width; it is only read during the call.
func (m *Monitor) Observe(features []float64) error {
	return m.ObserveBatch([][]float64{features})
}

// ObserveBatch folds a burst of live samples into the drift state under
// one lock acquisition. Every sample must have the reference's width.
func (m *Monitor) ObserveBatch(samples [][]float64) error {
	if len(samples) == 0 {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, fv := range samples {
		if len(fv) != len(m.ref.Features) {
			return fmt.Errorf("drift: sample has %d features, reference has %d", len(fv), len(m.ref.Features))
		}
		for f, v := range fv {
			m.counts[f][bucketOf(m.ref.Edges[f], v)]++
			if !m.seeded {
				m.ewmaMean[f] = v
			} else {
				a := m.cfg.Alpha
				d := v - m.ewmaMean[f]
				m.ewmaMean[f] += a * d
				m.ewmaVar[f] = (1 - a) * (m.ewmaVar[f] + a*d*d)
			}
		}
		m.seeded = true
		m.samples++
		if m.samples%uint64(m.cfg.RecomputeEvery) == 0 {
			m.publishLocked(m.snapshotLocked())
		}
	}
	if m.obs != nil {
		m.obs.Add(uint64(len(samples)))
	}
	return nil
}

// Snapshot computes the current drift report (and refreshes the
// telemetry gauges).
func (m *Monitor) Snapshot() Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	rep := m.snapshotLocked()
	m.publishLocked(rep)
	return rep
}

func (m *Monitor) snapshotLocked() Report {
	rep := Report{
		Samples:  m.samples,
		Warmup:   m.samples < uint64(m.cfg.MinSamples),
		Features: make([]FeatureDrift, len(m.ref.Features)),
	}
	for f, name := range m.ref.Features {
		fd := FeatureDrift{Feature: name}
		if !rep.Warmup {
			fd.PSI = psi(m.ref.Counts[f], m.counts[f])
		}
		if std := m.ref.Std[f]; std > 0 {
			fd.ZScore = (m.ewmaMean[f] - m.ref.Mean[f]) / std
		}
		rep.Features[f] = fd
		if fd.PSI > rep.MaxPSI {
			rep.MaxPSI = fd.PSI
		}
	}
	switch {
	case rep.Warmup:
		rep.Recommendation = "warmup"
	case rep.MaxPSI > m.cfg.AlertPSI:
		rep.Alert = true
		rep.Recommendation = "retrain-or-rollback"
	default:
		rep.Recommendation = "ok"
	}
	return rep
}

func (m *Monitor) publishLocked(rep Report) {
	if m.psi == nil {
		return
	}
	for f, fd := range rep.Features {
		m.psi[f].Set(fd.PSI)
		m.zsc[f].Set(fd.ZScore)
	}
	if rep.Alert {
		m.alertG.Set(1)
	} else {
		m.alertG.Set(0)
	}
}

// psiEpsilon floors bucket proportions so an empty bucket on either side
// contributes a large-but-finite term instead of ±Inf.
const psiEpsilon = 1e-6

// psi computes the Population Stability Index between the expected
// (training) and actual (live) histograms: Σ (p_a − p_e)·ln(p_a/p_e).
func psi(expected, actual []uint64) float64 {
	var te, ta float64
	for _, c := range expected {
		te += float64(c)
	}
	for _, c := range actual {
		ta += float64(c)
	}
	if te == 0 || ta == 0 {
		return 0
	}
	var sum float64
	for b := range expected {
		pe := float64(expected[b]) / te
		pa := float64(actual[b]) / ta
		if pe < psiEpsilon {
			pe = psiEpsilon
		}
		if pa < psiEpsilon {
			pa = psiEpsilon
		}
		sum += (pa - pe) * math.Log(pa/pe)
	}
	return sum
}
