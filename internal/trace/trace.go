// Package trace implements sampled wide-event tracing for the serving
// fleet. One Record captures a single verdict's end-to-end journey with
// per-hop latency attribution: time spent inside the gateway (route +
// forward queue), waiting in the shard's ingress ring, micro-batch
// assembly, scoring, and verdict emission. Records land in a fixed-size
// lock-free ring and are exposed as JSON via Handler (mounted at
// /debug/traces by the cmd tools).
//
// Hot-path contract: sampling decisions cost one atomic add per scored
// chunk (not per sample) and the unsampled path performs zero heap
// allocations — pinned by BenchmarkObserveTraceSample and an
// AllocsPerRun test. A nil *Tracer is valid everywhere and disables
// tracing entirely, mirroring the nil-registry convention in
// internal/telemetry.
package trace

import (
	"encoding/json"
	"net/http"
	"runtime"
	"sync/atomic"
)

// Hop indexes one attributed latency segment inside Record.Hops.
type Hop int

// The hops of a verdict's journey, in pipeline order. Values are
// nanoseconds. In a shard-tier record the sum of all hops equals
// TotalNanos exactly: the hops telescope over one wall-clock interval
// (gateway ingress → verdict written). Gateway-tier records attribute
// only the hops the gateway itself owns (queue, assembly, emit) and
// leave the rest zero.
const (
	// HopGateway is gateway ingress → shard ingress: routing, the
	// forwarder's ring wait and the upstream TCP write, measured as the
	// wall-clock delta between the gateway stamping IngressNanos on the
	// forwarded Sample frame and the shard's read loop observing it.
	// Zero when the agent talked to the shard directly.
	HopGateway Hop = iota
	// HopQueue is time spent queued in the ingress ring before a worker
	// round drained it.
	HopQueue
	// HopAssembly is drain → score start: per-stream batch grouping and
	// fan-out dispatch.
	HopAssembly
	// HopStage0 is the stage-0 anomaly-envelope pass over the chunk: the
	// cascade's pre-filter scoring plus the short-circuit partition. Zero
	// when no cascade is configured (and on gateway-tier records unless
	// the gateway runs an edge cascade).
	HopStage0
	// HopScore is the fused detect+observe scoring pass over the chunk
	// (includes drift observation and the shadow tap offer). With a
	// cascade enabled this covers only the pass-through subset.
	HopScore
	// HopEmit is score end → verdict handed to the emitter (for a TCP
	// shard: encoded into the connection's write buffer).
	HopEmit

	// NumHops is the number of attributed segments.
	NumHops = 6
)

// HopNames maps Hop indices to their wire/JSON names.
var HopNames = [NumHops]string{"gateway", "queue", "assembly", "stage0", "score", "emit"}

func (h Hop) String() string {
	if h < 0 || int(h) >= NumHops {
		return "invalid"
	}
	return HopNames[h]
}

// Tier labels for Record.Tier.
const (
	TierShard   = "shard"   // record assembled by a scoring shard
	TierGateway = "gateway" // record assembled by the gateway forwarder
)

// Record is one sampled wide event: a single (stream, seq) sample's trip
// through the tier that captured it. Records are fixed-size (strings are
// headers into long-lived config data) so writing one into the ring does
// not allocate.
type Record struct {
	// TraceID is unique per tracer instance (monotonic). It links the
	// record to histogram exemplars captured for the same sample.
	TraceID uint64 `json:"trace_id"`
	// Tier is TierShard or TierGateway.
	Tier string `json:"tier"`
	// App is the workload/app name of the stream, when known.
	App string `json:"app,omitempty"`
	// Shard is the upstream shard address (gateway-tier records only).
	Shard string `json:"shard,omitempty"`
	// Stream and Seq identify the sample within the connection.
	Stream uint32 `json:"stream"`
	Seq    uint32 `json:"seq"`
	// StartNanos is the wall-clock unix-nano origin of the trace: the
	// gateway ingress stamp when present, otherwise local ingress.
	StartNanos int64 `json:"start_nanos"`
	// Hops holds per-segment durations in nanoseconds, indexed by Hop.
	Hops [NumHops]int64 `json:"hops"`
	// TotalNanos is the end-to-end duration covered by this record. For
	// shard-tier records it equals the sum of Hops by construction.
	TotalNanos int64 `json:"total_nanos"`
}

// Config sizes a Tracer.
type Config struct {
	// SampleEvery traces roughly one sample out of every SampleEvery
	// scored (at most one per scored chunk). <= 0 disables tracing: New
	// returns nil, which every method accepts.
	SampleEvery int
	// Depth is the trace ring capacity, rounded up to a power of two.
	// Defaults to 256.
	Depth int
}

type slot struct {
	// seq is a per-slot seqlock: even = stable, odd = being written.
	// Writers and Snapshot both acquire via CAS(even → odd), so record
	// copies are mutually excluded without a lock shared across slots.
	seq atomic.Uint64
	rec Record
}

// Tracer samples wide-event records into a fixed-size lock-free ring.
// All methods are safe for concurrent use; all are no-ops on a nil
// receiver.
type Tracer struct {
	every uint64
	mask  uint64
	ctr   atomic.Uint64 // samples offered via SampleBatch
	ids   atomic.Uint64 // trace-ID allocator
	wpos  atomic.Uint64 // next ring slot
	drops atomic.Uint64 // records abandoned after slot contention
	slots []slot
}

// New builds a Tracer, or returns nil (tracing disabled) when
// cfg.SampleEvery <= 0.
func New(cfg Config) *Tracer {
	if cfg.SampleEvery <= 0 {
		return nil
	}
	depth := cfg.Depth
	if depth <= 0 {
		depth = 256
	}
	n := 1
	for n < depth {
		n <<= 1
	}
	return &Tracer{every: uint64(cfg.SampleEvery), mask: uint64(n - 1), slots: make([]slot, n)}
}

// SampleEvery reports the configured sampling period (0 when t is nil).
func (t *Tracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return int(t.every)
}

// SampleBatch advances the sample counter by n (one scored chunk) and
// reports whether one of those n samples crosses a sampling boundary.
// When it does, offset is the index of the chosen sample within the
// chunk and id is a fresh trace ID. At most one sample per chunk is
// chosen even if n spans several boundaries — sampling is a rate, not
// an exact stride. The not-chosen path costs one atomic add and
// allocates nothing.
func (t *Tracer) SampleBatch(n int) (offset int, id uint64, ok bool) {
	if t == nil || n <= 0 {
		return 0, 0, false
	}
	end := t.ctr.Add(uint64(n))
	start := end - uint64(n)
	next := (start/t.every + 1) * t.every // first boundary after start
	if next > end {
		return 0, 0, false
	}
	return int(next - start - 1), t.ids.Add(1), true
}

// Add publishes one record into the ring, overwriting the oldest entry.
// If the slot is briefly held by a Snapshot copy the write is retried a
// few times, then dropped (counted in Dropped) — tracing never blocks
// the scoring path.
func (t *Tracer) Add(r Record) {
	if t == nil {
		return
	}
	i := t.wpos.Add(1) - 1
	s := &t.slots[i&t.mask]
	for tries := 0; ; tries++ {
		v := s.seq.Load()
		if v&1 == 0 && s.seq.CompareAndSwap(v, v+1) {
			break
		}
		if tries == 8 {
			t.drops.Add(1)
			return
		}
		runtime.Gosched()
	}
	s.rec = r
	s.seq.Add(1)
}

// Dropped reports how many records were abandoned due to slot
// contention between a writer and a concurrent Snapshot.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.drops.Load()
}

// Snapshot copies the current ring contents (unordered; skip-on-contend,
// so a slot mid-write is simply omitted). Safe to call while scoring
// continues.
func (t *Tracer) Snapshot() []Record {
	if t == nil {
		return nil
	}
	out := make([]Record, 0, len(t.slots))
	for i := range t.slots {
		s := &t.slots[i]
		v := s.seq.Load()
		if v&1 != 0 || !s.seq.CompareAndSwap(v, v+1) {
			continue // writer owns it right now; skip this slot
		}
		r := s.rec
		s.seq.Add(1)
		if r.TraceID != 0 {
			out = append(out, r)
		}
	}
	return out
}

// Dump is the JSON document served by Handler.
type Dump struct {
	SampleEvery int      `json:"sample_every"`
	Depth       int      `json:"depth"`
	Dropped     uint64   `json:"dropped"`
	HopNames    []string `json:"hop_names"`
	Records     []Record `json:"records"`
}

// DumpState snapshots the tracer into a serializable Dump. Valid on a
// nil tracer (empty dump).
func (t *Tracer) DumpState() Dump {
	d := Dump{HopNames: HopNames[:], Records: []Record{}}
	if t == nil {
		return d
	}
	d.SampleEvery = int(t.every)
	d.Depth = len(t.slots)
	d.Dropped = t.drops.Load()
	if recs := t.Snapshot(); recs != nil {
		d.Records = recs
	}
	return d
}

// Handler serves the ring contents as JSON, shaped as Dump. Mounted at
// /debug/traces by the serving tools. Works on a nil tracer.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(t.DumpState())
	})
}
