package trace

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestNewDisabled(t *testing.T) {
	if tr := New(Config{SampleEvery: 0}); tr != nil {
		t.Fatalf("SampleEvery=0 should disable tracing, got %v", tr)
	}
	if tr := New(Config{SampleEvery: -5}); tr != nil {
		t.Fatalf("negative SampleEvery should disable tracing")
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if _, _, ok := tr.SampleBatch(100); ok {
		t.Fatal("nil tracer sampled")
	}
	tr.Add(Record{TraceID: 1})
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil Snapshot = %v, want nil", got)
	}
	if tr.SampleEvery() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil accessors should be zero")
	}
	d := tr.DumpState()
	if len(d.Records) != 0 || len(d.HopNames) != NumHops {
		t.Fatalf("nil DumpState = %+v", d)
	}
}

func TestSampleBatchStride(t *testing.T) {
	tr := New(Config{SampleEvery: 8, Depth: 16})
	var hits int
	var lastID uint64
	const chunk, chunks = 3, 100
	for i := 0; i < chunks; i++ {
		off, id, ok := tr.SampleBatch(chunk)
		if !ok {
			continue
		}
		hits++
		if off < 0 || off >= chunk {
			t.Fatalf("offset %d out of chunk [0,%d)", off, chunk)
		}
		if id <= lastID {
			t.Fatalf("trace IDs not increasing: %d after %d", id, lastID)
		}
		lastID = id
	}
	// 300 samples at 1-in-8 → 37 boundaries; one hit max per chunk.
	want := chunk * chunks / 8
	if hits < want-1 || hits > want+1 {
		t.Fatalf("hits = %d, want ~%d", hits, want)
	}
}

func TestSampleBatchChunkLargerThanStride(t *testing.T) {
	tr := New(Config{SampleEvery: 2})
	off, _, ok := tr.SampleBatch(10)
	if !ok {
		t.Fatal("chunk spanning several boundaries must sample")
	}
	if off != 1 {
		t.Fatalf("offset = %d, want 1 (first boundary)", off)
	}
	// At most one trace per chunk even when n >> every.
	if _, _, ok := tr.SampleBatch(10); !ok {
		t.Fatal("next chunk should sample again")
	}
}

func TestRingOverwrite(t *testing.T) {
	tr := New(Config{SampleEvery: 1, Depth: 4})
	for i := 1; i <= 10; i++ {
		tr.Add(Record{TraceID: uint64(i), TotalNanos: int64(i)})
	}
	got := tr.Snapshot()
	if len(got) != 4 {
		t.Fatalf("snapshot size = %d, want 4", len(got))
	}
	seen := map[uint64]bool{}
	for _, r := range got {
		seen[r.TraceID] = true
	}
	for id := uint64(7); id <= 10; id++ {
		if !seen[id] {
			t.Fatalf("newest records should survive, missing id %d (have %v)", id, got)
		}
	}
}

func TestDepthRounding(t *testing.T) {
	tr := New(Config{SampleEvery: 1, Depth: 5})
	if got := len(tr.slots); got != 8 {
		t.Fatalf("depth 5 should round to 8 slots, got %d", got)
	}
	tr = New(Config{SampleEvery: 1}) // default
	if got := len(tr.slots); got != 256 {
		t.Fatalf("default depth = %d, want 256", got)
	}
}

func TestConcurrentAddSnapshot(t *testing.T) {
	tr := New(Config{SampleEvery: 1, Depth: 32})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				tr.Add(Record{TraceID: uint64(g*10000 + i + 1), TotalNanos: int64(i)})
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			for _, r := range tr.Snapshot() {
				if r.TraceID == 0 {
					t.Error("snapshot returned zero record")
					return
				}
			}
		}
	}()
	wg.Wait()
	if got := tr.Snapshot(); len(got) == 0 {
		t.Fatal("ring empty after concurrent adds")
	}
}

func TestHandlerJSON(t *testing.T) {
	tr := New(Config{SampleEvery: 4, Depth: 8})
	tr.Add(Record{TraceID: 42, Tier: TierShard, App: "vim", Stream: 7, Seq: 9,
		Hops: [NumHops]int64{0, 10, 20, 30, 40}, TotalNanos: 100})
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("content-type = %q", ct)
	}
	var d Dump
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatalf("response not JSON: %v\n%s", err, rec.Body.String())
	}
	if d.SampleEvery != 4 || d.Depth != 8 || len(d.HopNames) != NumHops {
		t.Fatalf("dump header = %+v", d)
	}
	if len(d.Records) != 1 || d.Records[0].TraceID != 42 || d.Records[0].App != "vim" {
		t.Fatalf("dump records = %+v", d.Records)
	}
	var sum int64
	for _, h := range d.Records[0].Hops {
		sum += h
	}
	if sum != d.Records[0].TotalNanos {
		t.Fatalf("hops sum %d != total %d", sum, d.Records[0].TotalNanos)
	}
}

func TestHopString(t *testing.T) {
	if HopGateway.String() != "gateway" || HopEmit.String() != "emit" {
		t.Fatal("hop names wrong")
	}
	if Hop(99).String() != "invalid" {
		t.Fatal("out-of-range hop should stringify as invalid")
	}
}

func TestSampleBatchNoAllocs(t *testing.T) {
	tr := New(Config{SampleEvery: 1 << 30, Depth: 16})
	if n := testing.AllocsPerRun(1000, func() {
		tr.SampleBatch(64)
	}); n != 0 {
		t.Fatalf("unsampled SampleBatch allocates %v per run, want 0", n)
	}
	var nilTr *Tracer
	if n := testing.AllocsPerRun(1000, func() {
		nilTr.SampleBatch(64)
	}); n != 0 {
		t.Fatalf("nil SampleBatch allocates %v per run, want 0", n)
	}
}

func TestAddNoAllocs(t *testing.T) {
	tr := New(Config{SampleEvery: 1, Depth: 16})
	r := Record{TraceID: 1, Tier: TierShard, TotalNanos: 5}
	if n := testing.AllocsPerRun(1000, func() {
		tr.Add(r)
	}); n != 0 {
		t.Fatalf("Add allocates %v per run, want 0", n)
	}
}

// BenchmarkObserveTraceSample pins the hot-path cost of the sampling
// decision (named to ride the CI bench gate's BenchmarkObserve pattern).
// The disabled and unsampled variants are the serve hot path's real
// per-chunk overhead and must stay allocation-free.
func BenchmarkObserveTraceSample(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		var tr *Tracer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.SampleBatch(256)
		}
	})
	b.Run("unsampled", func(b *testing.B) {
		tr := New(Config{SampleEvery: 1 << 62, Depth: 256})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.SampleBatch(256)
		}
	})
	b.Run("sampled+add", func(b *testing.B) {
		tr := New(Config{SampleEvery: 1, Depth: 256})
		rec := Record{TraceID: 1, Tier: TierShard, TotalNanos: 100}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, id, ok := tr.SampleBatch(256); ok {
				rec.TraceID = id
				tr.Add(rec)
			}
		}
	})
}
