package samplelog

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"twosmart/internal/telemetry"
)

// segPrefix/segSuffix name segment files: seg-00000001.slog,
// seg-00000002.slog, ... — zero-padded so lexical order is append order.
const (
	segPrefix = "seg-"
	segSuffix = ".slog"
)

// segmentName returns the file name of segment index.
func segmentName(index uint64) string {
	return fmt.Sprintf("%s%08d%s", segPrefix, index, segSuffix)
}

// segmentIndex parses a segment file name back to its index.
func segmentIndex(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// SegmentFiles lists dir's segment files in append order.
func SegmentFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if _, ok := segmentIndex(e.Name()); ok && !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	paths := make([]string, len(names))
	for i, n := range names {
		paths[i] = filepath.Join(dir, n)
	}
	return paths, nil
}

// WriterConfig configures a sample-log Writer.
type WriterConfig struct {
	// Dir is the log directory, created if missing. Required.
	Dir string
	// SegmentBytes rotates the current segment once it reaches this size
	// (default 8 MiB; the rotation check runs per drain round, so a
	// segment may overshoot by one round's worth of records).
	SegmentBytes int64
	// MaxSegments bounds retention: when a rotation would leave more
	// than this many segments on disk the oldest are pruned (default 64,
	// negative = unbounded). The segment being written always survives.
	MaxSegments int
	// QueueDepth bounds the append ring; beyond it the oldest pending
	// record is shed — a slow disk drops log records, it never stalls
	// the caller (default 8192).
	QueueDepth int
	// Telemetry, when non-nil, receives the samplelog_* families.
	Telemetry *telemetry.Registry
}

func (c WriterConfig) fill() (WriterConfig, error) {
	if c.Dir == "" {
		return c, errors.New("samplelog: empty log directory")
	}
	if c.SegmentBytes == 0 {
		c.SegmentBytes = 8 << 20
	}
	if c.SegmentBytes < headerLen+1 {
		return c, fmt.Errorf("samplelog: segment size %d below the %d-byte header", c.SegmentBytes, headerLen)
	}
	if c.MaxSegments == 0 {
		c.MaxSegments = 64
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 8192
	}
	if c.QueueDepth < 1 {
		return c, fmt.Errorf("samplelog: queue depth %d below 1", c.QueueDepth)
	}
	return c, nil
}

// Stats is a Writer's lifetime accounting.
type Stats struct {
	// Appended counts records durably handed to the segment writer.
	Appended uint64 `json:"appended"`
	// Dropped counts records shed by the bounded ring or discarded after
	// a disk failure.
	Dropped uint64 `json:"dropped"`
	// Bytes counts segment bytes written (headers included).
	Bytes uint64 `json:"bytes"`
	// Segments counts segments opened over the writer's lifetime.
	Segments uint64 `json:"segments"`
	// Pruned counts segments removed by retention.
	Pruned uint64 `json:"pruned"`
}

// pending is one queued record: the fixed fields plus a ring-owned
// feature buffer recycled through the free list after encoding.
type pending struct {
	rec Record // rec.Features points into the free-list buffer
}

// Writer is the durable sample log's producer half. Append is safe for
// concurrent use from any number of scoring goroutines and never blocks
// on the disk: records flow through a bounded drop-oldest ring to one
// background goroutine that encodes, writes, rotates and prunes.
type Writer struct {
	cfg WriterConfig

	mu     sync.Mutex
	buf    []pending // circular pending queue
	head   int
	n      int
	free   [][]float64
	closed bool

	kick chan struct{}
	done chan struct{}

	// writer-goroutine state
	f        *os.File
	segIndex uint64
	segBytes int64
	enc      []byte    // reusable encode buffer
	drain    []pending // reusable drain buffer
	err      error     // sticky disk failure

	// stats fields are atomic: Append's drop accounting runs under w.mu
	// while the writer goroutine's batch accounting does not.
	stats struct {
		appended, dropped, bytes, segments, pruned atomic.Uint64
	}

	appendedC telemetry.Counter
	droppedC  telemetry.Counter
	bytesC    telemetry.Counter
	segmentsC telemetry.Counter
	prunedC   telemetry.Counter
	errorsC   telemetry.Counter
}

// OpenWriter opens (or creates) the log directory, recovers the newest
// existing segment by truncating any torn tail at its last valid
// checksum, and starts the background writer on a fresh segment.
func OpenWriter(cfg WriterConfig) (*Writer, error) {
	filled, err := cfg.fill()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filled.Dir, 0o755); err != nil {
		return nil, err
	}
	last, err := recoverDir(filled.Dir)
	if err != nil {
		return nil, err
	}
	reg := filled.Telemetry
	w := &Writer{
		cfg:       filled,
		buf:       make([]pending, filled.QueueDepth),
		free:      make([][]float64, 0, filled.QueueDepth+1),
		kick:      make(chan struct{}, 1),
		done:      make(chan struct{}),
		segIndex:  last,
		appendedC: reg.Counter("samplelog_appended_total"),
		droppedC:  reg.Counter("samplelog_dropped_total"),
		bytesC:    reg.Counter("samplelog_bytes_total"),
		segmentsC: reg.Counter("samplelog_segments_total"),
		prunedC:   reg.Counter("samplelog_pruned_total"),
		errorsC:   reg.Counter("samplelog_write_errors_total"),
	}
	if err := w.rotate(); err != nil {
		return nil, err
	}
	go w.run()
	return w, nil
}

// recoverDir truncates the newest segment's torn tail (crash recovery)
// and returns the highest segment index in use.
func recoverDir(dir string) (uint64, error) {
	paths, err := SegmentFiles(dir)
	if err != nil {
		return 0, err
	}
	if len(paths) == 0 {
		return 0, nil
	}
	newest := paths[len(paths)-1]
	if _, err := Recover(newest); err != nil {
		return 0, fmt.Errorf("samplelog: recovering %s: %w", newest, err)
	}
	idx, _ := segmentIndex(filepath.Base(newest))
	return idx, nil
}

// Recover scans one segment and physically truncates it at the last
// valid checksum when a torn tail is present, returning the scan stats.
// Mid-file corruption is reported, not repaired — a checksum mismatch
// that is not at the tail means the disk lied, which deserves operator
// eyes, not silent truncation.
func Recover(path string) (SegmentStats, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return SegmentStats{}, err
	}
	st, err := DecodeSegment(data, nil)
	if err != nil {
		return st, err
	}
	if st.TornBytes > 0 {
		if err := os.Truncate(path, st.ValidBytes); err != nil {
			return st, err
		}
	}
	return st, nil
}

// Append offers one record to the log. The feature vector is copied into
// a recycled ring buffer, so the caller may reuse its slice immediately.
// It never blocks: when the ring is full the oldest pending record is
// shed (the drop-not-block contract), and after Close or a disk failure
// the record is dropped outright. Reports whether the record was queued.
func (w *Writer) Append(rec Record) bool {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return false
	}
	w.enqueueLocked(rec)
	w.mu.Unlock()
	select {
	case w.kick <- struct{}{}:
	default:
	}
	return true
}

// AppendBatch offers a chunk of records under one lock acquisition — the
// scoring tap logs whole verdict chunks, and per-record locking there
// serializes the serving workers behind the log at full load. Same
// semantics as Append per record (copied features, drop-oldest, drop
// after Close or disk failure); reports how many records were queued.
func (w *Writer) AppendBatch(recs []Record) int {
	if len(recs) == 0 {
		return 0
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0
	}
	for _, rec := range recs {
		w.enqueueLocked(rec)
	}
	w.mu.Unlock()
	select {
	case w.kick <- struct{}{}:
	default:
	}
	return len(recs)
}

// enqueueLocked places one record in the ring, shedding the oldest
// pending record when full. Caller holds w.mu.
func (w *Writer) enqueueLocked(rec Record) {
	if w.n == len(w.buf) {
		oldest := &w.buf[w.head]
		w.free = append(w.free, oldest.rec.Features)
		oldest.rec = Record{}
		w.head = (w.head + 1) % len(w.buf)
		w.n--
		w.stats.dropped.Add(1)
		w.droppedC.Inc()
	}
	buf := w.grab(len(rec.Features))
	copy(buf, rec.Features)
	rec.Features = buf
	w.buf[(w.head+w.n)%len(w.buf)].rec = rec
	w.n++
}

// grab returns a feature buffer of length n from the free list. Caller
// holds w.mu.
func (w *Writer) grab(n int) []float64 {
	if k := len(w.free); k > 0 {
		b := w.free[k-1]
		w.free = w.free[:k-1]
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]float64, n)
}

// run is the background writer loop: every wake-up it takes ownership of
// the full ring by swapping in a spare buffer — an O(1) critical section,
// so a large drain never stalls Append — then compacts, writes the batch,
// and hands the feature buffers back to the free list; Close's final
// wake-up drains the rest and returns.
func (w *Writer) run() {
	defer close(w.done)
	spare := make([]pending, len(w.buf))
	for {
		<-w.kick
		w.mu.Lock()
		closed := w.closed
		buf, head, n := w.buf, w.head, w.n
		w.buf = spare
		w.head, w.n = 0, 0
		w.mu.Unlock()

		w.drain = w.drain[:0]
		for i := 0; i < n; i++ {
			w.drain = append(w.drain, buf[(head+i)%len(buf)])
			buf[(head+i)%len(buf)].rec = Record{}
		}
		spare = buf

		w.writeBatch(w.drain)

		w.mu.Lock()
		for i := range w.drain {
			w.free = append(w.free, w.drain[i].rec.Features)
			w.drain[i].rec = Record{}
		}
		w.mu.Unlock()
		if closed {
			return
		}
	}
}

// writeBatch encodes and writes one drained batch, rotating first when
// the current segment is over the size bound. After a sticky disk
// failure batches are discarded and counted as dropped.
func (w *Writer) writeBatch(batch []pending) {
	if len(batch) == 0 {
		return
	}
	if w.err != nil {
		w.countDropped(len(batch))
		return
	}
	if w.segBytes >= w.cfg.SegmentBytes {
		if err := w.rotate(); err != nil {
			w.fail(err, len(batch))
			return
		}
	}
	w.enc = w.enc[:0]
	for i := range batch {
		var err error
		w.enc, err = AppendRecord(w.enc, batch[i].rec)
		if err != nil {
			// An oversized record is a caller bug; skip it, keep the log.
			w.countDropped(1)
			continue
		}
	}
	n, err := w.f.Write(w.enc)
	if err != nil {
		w.fail(err, len(batch))
		return
	}
	w.segBytes += int64(n)
	w.stats.bytes.Add(uint64(n))
	w.bytesC.Add(uint64(n))
	w.stats.appended.Add(uint64(len(batch)))
	w.appendedC.Add(uint64(len(batch)))
}

// fail records a sticky disk failure: the current segment is closed and
// every subsequent record is dropped. The log never back-pressures the
// serving path, even when the disk is gone.
func (w *Writer) fail(err error, batch int) {
	w.err = err
	w.errorsC.Inc()
	w.countDropped(batch)
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
}

func (w *Writer) countDropped(n int) {
	w.stats.dropped.Add(uint64(n))
	w.droppedC.Add(uint64(n))
}

// rotate syncs and closes the current segment, opens the next one with a
// fresh header, and applies retention.
func (w *Writer) rotate() error {
	if w.f != nil {
		w.f.Sync()
		if err := w.f.Close(); err != nil {
			return err
		}
		w.f = nil
	}
	w.segIndex++
	path := filepath.Join(w.cfg.Dir, segmentName(w.segIndex))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	hdr := AppendHeader(nil, time.Now().UnixNano())
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.segBytes = int64(len(hdr))
	w.stats.bytes.Add(uint64(len(hdr)))
	w.bytesC.Add(uint64(len(hdr)))
	w.stats.segments.Add(1)
	w.segmentsC.Inc()
	w.prune()
	return nil
}

// prune applies the retention bound, removing the oldest segments beyond
// MaxSegments. Best-effort: a failed remove is retried on the next
// rotation.
func (w *Writer) prune() {
	if w.cfg.MaxSegments < 0 {
		return
	}
	paths, err := SegmentFiles(w.cfg.Dir)
	if err != nil || len(paths) <= w.cfg.MaxSegments {
		return
	}
	for _, p := range paths[:len(paths)-w.cfg.MaxSegments] {
		if os.Remove(p) == nil {
			w.stats.pruned.Add(1)
			w.prunedC.Inc()
		}
	}
}

// Close stops accepting records, drains what is queued to disk, syncs
// and closes the segment, and returns the lifetime stats plus any sticky
// disk error. Safe to call once; Append after Close drops.
func (w *Writer) Close() (Stats, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		<-w.done
		return w.snapshot(), w.err
	}
	w.closed = true
	w.mu.Unlock()
	// Wake the writer for its final drain. Non-blocking: if a kick is
	// already buffered, run is guaranteed a wake-up after closed was
	// set, and every record enqueued before the close is in the ring
	// when that drain takes the lock.
	select {
	case w.kick <- struct{}{}:
	default:
	}
	<-w.done
	if w.f != nil {
		w.f.Sync()
		if err := w.f.Close(); err != nil && w.err == nil {
			w.err = err
		}
		w.f = nil
	}
	return w.snapshot(), w.err
}

// snapshot reads the lifetime stats. Fully consistent only once the
// writer goroutine has exited (Close waits for it before calling).
func (w *Writer) snapshot() Stats {
	return Stats{
		Appended: w.stats.appended.Load(),
		Dropped:  w.stats.dropped.Load(),
		Bytes:    w.stats.bytes.Load(),
		Segments: w.stats.segments.Load(),
		Pruned:   w.stats.pruned.Load(),
	}
}
