//go:build !race

package samplelog

const raceEnabled = false
