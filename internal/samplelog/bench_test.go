package samplelog

import (
	"testing"
	"time"
)

// benchWriter opens a writer sized so the measured loop never rotates
// (rotation opens files, which allocates) and warms the free list.
func benchWriter(b testing.TB, dir string) (*Writer, Record) {
	b.Helper()
	w, err := OpenWriter(WriterConfig{Dir: dir, SegmentBytes: 1 << 30, QueueDepth: 4096})
	if err != nil {
		b.Fatal(err)
	}
	rec := testRecord(1)
	rec.Features = make([]float64, 64)
	for i := range rec.Features {
		rec.Features[i] = float64(i) * 1.5
	}
	// Warm up: cycle enough records through the ring that the free list,
	// encode buffer and drain buffer have all reached steady-state size.
	for i := 0; i < 8192; i++ {
		w.Append(rec)
	}
	time.Sleep(50 * time.Millisecond)
	return w, rec
}

// BenchmarkSampleLogAppend measures the serving tier's cost of logging
// one scored sample. The benchgate allocs/op entry holds this at zero:
// steady state recycles feature buffers through the free list, so the
// hot path never allocates.
func BenchmarkSampleLogAppend(b *testing.B) {
	w, rec := benchWriter(b, b.TempDir())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Append(rec)
	}
	b.StopTimer()
	if _, err := w.Close(); err != nil {
		b.Fatal(err)
	}
}

// TestAppendZeroAlloc pins the drop-not-block contract's other half in a
// plain test so `go test` catches an allocating append without the bench
// gate: at steady state Append must not allocate.
func TestAppendZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation forces escapes the real hot path does not have")
	}
	w, rec := benchWriter(t, t.TempDir())
	defer w.Close()
	allocs := testing.AllocsPerRun(2000, func() { w.Append(rec) })
	// The background drain goroutine runs concurrently and its steady
	// state is also allocation-free, but give scheduling noise a hair of
	// slack rather than flake CI.
	if allocs > 0.01 {
		t.Fatalf("Append allocates %.3f allocs/op, want 0", allocs)
	}
}
