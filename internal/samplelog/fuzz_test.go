package samplelog

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// fuzzSeeds are the record shapes the generators mutate from.
func fuzzSeeds() []Record {
	return []Record{
		{},
		{Nanos: 1, Stream: 2, App: "app", ModelVersion: 3, Flags: FlagScored | FlagMalware, Class: 4, Score: 0.5, Features: []float64{1, 2}},
		{Nanos: -1, App: "x", Score: math.Inf(1), Features: []float64{math.NaN()}},
		{App: "edge", Flags: FlagAlarm, Features: []float64{0, -0.0, math.MaxFloat64}},
	}
}

// FuzzDecodeRecord pins the record codec's safety and canonicality
// contracts against arbitrary log bytes:
//
//  1. DecodeRecord never panics, whatever the bytes (reopen feeds it a
//     crash-torn, possibly bit-rotted file).
//  2. A record that decodes successfully re-encodes to exactly the bytes
//     it came from — the encoding is canonical, so every valid log byte
//     range has one meaning.
//  3. Torn and corrupt inputs are told apart: a strict prefix of a valid
//     record is ErrTorn (recovery truncates), never ErrCorrupt (operator
//     alarm).
func FuzzDecodeRecord(f *testing.F) {
	for _, r := range fuzzSeeds() {
		buf, err := AppendRecord(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		f.Add(buf[:len(buf)-1]) // torn
		mut := append([]byte(nil), buf...)
		mut[len(mut)/2] ^= 0x20 // corrupt
		f.Add(mut)
	}
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // absurd length

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			if n != 0 {
				t.Fatalf("failed decode consumed %d bytes", n)
			}
			return
		}
		if n < 8 || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		re, err := AppendRecord(nil, rec)
		if err != nil {
			t.Fatalf("re-encode of decoded record %+v: %v", rec, err)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("non-canonical encoding:\n in  %x\n out %x", data[:n], re)
		}
		// Every strict prefix of a valid record is a torn tail.
		for _, cut := range []int{0, 1, n / 2, n - 1} {
			if _, _, err := DecodeRecord(data[:cut]); !errors.Is(err, ErrTorn) {
				t.Fatalf("prefix %d/%d: got %v, want ErrTorn", cut, n, err)
			}
		}
	})
}

// FuzzDecodeSegment pins the segment scanner: it never panics, its stats
// are internally consistent, and every record it yields survives a
// re-encode round trip (the scanner only ever hands out checksummed
// data).
func FuzzDecodeSegment(f *testing.F) {
	seg := AppendHeader(nil, 99)
	for _, r := range fuzzSeeds() {
		var err error
		seg, err = AppendRecord(seg, r)
		if err != nil {
			f.Fatal(err)
		}
	}
	f.Add(seg)
	f.Add(seg[:len(seg)-3]) // torn tail
	mut := append([]byte(nil), seg...)
	mut[headerLen+6] ^= 0x01 // first record corrupted
	f.Add(mut)
	f.Add(AppendHeader(nil, 0)) // empty segment
	f.Add([]byte("2SLGxxxx"))   // short header

	f.Fuzz(func(t *testing.T, data []byte) {
		var yielded int
		st, err := DecodeSegment(data, func(r Record) error {
			yielded++
			if _, err := AppendRecord(nil, r); err != nil {
				t.Fatalf("scanner yielded unencodable record %+v: %v", r, err)
			}
			return nil
		})
		if err != nil {
			if yielded != 0 {
				t.Fatalf("failed scan yielded %d records", yielded)
			}
			return
		}
		if st.Records != yielded {
			t.Fatalf("stats count %d records, callback saw %d", st.Records, yielded)
		}
		if st.ValidBytes < int64(headerLen) || st.ValidBytes > int64(len(data)) {
			t.Fatalf("valid bytes %d outside [header, %d]", st.ValidBytes, len(data))
		}
		if st.TornBytes < 0 || st.ValidBytes+st.TornBytes > int64(len(data)) {
			t.Fatalf("torn bytes %d inconsistent with valid %d of %d", st.TornBytes, st.ValidBytes, len(data))
		}
		if st.TornBytes > 0 && st.Corrupted > 0 {
			t.Fatal("scan reported both a torn tail and corruption; the scan stops at whichever comes first")
		}
		// The valid prefix must rescan to the same result: truncating at
		// ValidBytes (what recovery does) yields a clean segment.
		clean, err := DecodeSegment(data[:st.ValidBytes], nil)
		if err != nil {
			t.Fatalf("rescan of valid prefix failed: %v", err)
		}
		if clean.Records != st.Records || clean.TornBytes != 0 || clean.Corrupted != 0 {
			t.Fatalf("valid prefix rescans dirty: %+v vs %+v", clean, st)
		}
	})
}
