package samplelog

import (
	"context"
	"errors"
	"fmt"
	"math"

	"twosmart/internal/anomaly"
	"twosmart/internal/core"
	"twosmart/internal/parallel"
	"twosmart/internal/shadow"
	"twosmart/internal/workload"
)

// BacktestOptions narrows and parallelizes a backtest run.
type BacktestOptions struct {
	// Version is the candidate's registry version, echoed in the report.
	Version int
	// Workers bounds the replay fan-out (default: parallel's default).
	Workers int
	// FromNanos/ToNanos bound the replay window (inclusive); zero means
	// unbounded on that side.
	FromNanos int64
	ToNanos   int64
	// App restricts the replay to one application's records; empty means
	// all apps.
	App string
	// Envelope, when non-nil, additionally replays every record through
	// the stage-0 cascade envelope and reports what the cascade would have
	// done to the recorded traffic — including the safety number: recorded
	// malware verdicts the envelope would have short-circuited as clear
	// benign. The envelope's width must match the candidate's.
	Envelope *anomaly.Envelope
	// CascadeThreshold is the short-circuit knob for the cascade replay:
	// 0 uses the envelope's calibrated threshold, > 0 overrides it, < 0
	// skips the cascade replay even with an Envelope set.
	CascadeThreshold float64
}

// CascadeBacktest is the cascade section of a BacktestResult: what the
// stage-0 envelope would have decided about the recorded, scored traffic.
type CascadeBacktest struct {
	// Threshold is the effective short-circuit threshold replayed.
	Threshold float64 `json:"threshold"`
	// ShortCircuited counts replayed records the envelope would have
	// answered as clear benign without reaching the full detector.
	ShortCircuited uint64 `json:"short_circuited"`
	// PassedOn counts replayed records the envelope would have forwarded.
	PassedOn uint64 `json:"passed_on"`
	// ShortFraction is ShortCircuited over the replayed total.
	ShortFraction float64 `json:"short_fraction"`
	// MalwareShortCircuited is the safety number: recorded malware
	// verdicts the cascade would have short-circuited. Anything above zero
	// means the envelope would have suppressed a detection the fleet
	// actually made.
	MalwareShortCircuited uint64 `json:"malware_short_circuited"`
}

// BacktestResult pairs the divergence report with the log-scan context a
// CI assertion or operator needs to trust it: how much of the log was
// actually replayed, and why the rest was not.
type BacktestResult struct {
	// Report is the candidate-vs-recorded divergence in the same shape
	// shadow scoring and smartctl diff emit.
	Report shadow.Report `json:"report"`
	// Log is the integrity scan of the whole directory.
	Log VerifyReport `json:"log"`
	// Replayed counts records actually scored against the candidate.
	Replayed int `json:"replayed"`
	// SkippedUnscored counts records that carried no recorded verdict
	// (gateway-tier records log features before scoring happens).
	SkippedUnscored int `json:"skipped_unscored"`
	// SkippedFiltered counts scored records excluded by the window or
	// app filter.
	SkippedFiltered int `json:"skipped_filtered"`
	// Cascade is the stage-0 replay section, present only when
	// BacktestOptions carried an envelope (and the threshold knob did not
	// disable it).
	Cascade *CascadeBacktest `json:"cascade,omitempty"`
}

// backtest divergence accumulator; shadow keeps its own unexported, so
// the full-speed replay path carries a parallel-mergeable twin and emits
// the shared shadow.Report shape at the end.
type btStats struct {
	scored        uint64
	errors        uint64
	disagreements uint64
	sumAbsDelta   float64
	maxDelta      float64
	perClass      map[string]*btClass

	// cascade replay accounting (all zero when no envelope rides along)
	cascadeShort  uint64
	cascadePass   uint64
	malwareShort  uint64
	cascadeErrors uint64 // records whose width the envelope could not score
}

type btClass struct {
	observed    uint64
	disagreed   uint64
	sumAbsDelta float64
}

func (st *btStats) observe(cand *core.CompiledDetector, rec Record) {
	v, err := cand.Detect(rec.Features)
	if err != nil {
		st.errors++
		return
	}
	score, err := cand.MalwareScore(rec.Features)
	if err != nil {
		st.errors++
		return
	}
	st.scored++
	delta := math.Abs(score - rec.Score)
	st.sumAbsDelta += delta
	if delta > st.maxDelta {
		st.maxDelta = delta
	}
	name := workload.Class(rec.Class).String()
	ca := st.perClass[name]
	if ca == nil {
		ca = &btClass{}
		st.perClass[name] = ca
	}
	ca.observed++
	ca.sumAbsDelta += delta
	if v.Malware != rec.Malware() {
		st.disagreements++
		ca.disagreed++
	}
}

// observeCascade replays one record through the stage-0 envelope and
// accounts what the cascade would have done to it.
func (st *btStats) observeCascade(env *anomaly.Compiled, threshold float64, rec Record) {
	if len(rec.Features) != env.NumFeatures() {
		st.cascadeErrors++
		return
	}
	if env.Score(rec.Features) <= threshold {
		st.cascadeShort++
		if rec.Malware() {
			st.malwareShort++
		}
	} else {
		st.cascadePass++
	}
}

func (st *btStats) merge(o btStats) {
	st.scored += o.scored
	st.errors += o.errors
	st.disagreements += o.disagreements
	st.sumAbsDelta += o.sumAbsDelta
	if o.maxDelta > st.maxDelta {
		st.maxDelta = o.maxDelta
	}
	for name, ca := range o.perClass {
		dst := st.perClass[name]
		if dst == nil {
			dst = &btClass{}
			st.perClass[name] = dst
		}
		dst.observed += ca.observed
		dst.disagreed += ca.disagreed
		dst.sumAbsDelta += ca.sumAbsDelta
	}
	st.cascadeShort += o.cascadeShort
	st.cascadePass += o.cascadePass
	st.malwareShort += o.malwareShort
	st.cascadeErrors += o.cascadeErrors
}

func (st *btStats) report(version int) shadow.Report {
	rep := shadow.Report{
		CandidateVersion: version,
		Scored:           st.scored,
		Errors:           st.errors,
		Disagreements:    st.disagreements,
		MaxScoreDelta:    st.maxDelta,
	}
	if st.scored > 0 {
		rep.VerdictDivergence = float64(st.disagreements) / float64(st.scored)
		rep.MeanAbsScoreDelta = st.sumAbsDelta / float64(st.scored)
	}
	if len(st.perClass) > 0 {
		rep.PerClass = make(map[string]shadow.ClassStat, len(st.perClass))
		for name, ca := range st.perClass {
			cs := shadow.ClassStat{Observed: ca.observed, Disagreed: ca.disagreed}
			if ca.observed > 0 {
				cs.MeanAbsDelta = ca.sumAbsDelta / float64(ca.observed)
			}
			rep.PerClass[name] = cs
		}
	}
	return rep
}

// Backtest replays a recorded log window through a candidate detector at
// full speed and reports divergence against the verdicts the fleet
// actually served. Records without a recorded verdict (gateway-tier
// captures) are skipped — there is nothing to diverge from. Each worker
// compiles its own candidate (compiled detectors are single-goroutine by
// contract) and scores a contiguous chunk; the torn/corrupt accounting
// of the underlying scan rides along in the result.
func Backtest(ctx context.Context, dir string, candidate *core.Detector, opts BacktestOptions) (BacktestResult, error) {
	var res BacktestResult
	if candidate == nil {
		return res, errors.New("samplelog: nil candidate detector")
	}
	var cascadeThreshold float64
	runCascade := opts.Envelope != nil && opts.CascadeThreshold >= 0
	if runCascade {
		if err := opts.Envelope.Validate(); err != nil {
			return res, fmt.Errorf("samplelog: cascade envelope: %w", err)
		}
		if opts.Envelope.NumFeatures() != candidate.NumFeatures() {
			return res, fmt.Errorf("samplelog: cascade envelope has %d features, candidate wants %d",
				opts.Envelope.NumFeatures(), candidate.NumFeatures())
		}
		cascadeThreshold = opts.Envelope.Threshold
		if opts.CascadeThreshold > 0 {
			cascadeThreshold = opts.CascadeThreshold
		}
	}
	var records []Record
	rep, err := ReadDir(dir, func(r Record) error {
		if !r.Scored() {
			res.SkippedUnscored++
			return nil
		}
		if (opts.FromNanos != 0 && r.Nanos < opts.FromNanos) ||
			(opts.ToNanos != 0 && r.Nanos > opts.ToNanos) ||
			(opts.App != "" && r.App != opts.App) {
			res.SkippedFiltered++
			return nil
		}
		records = append(records, r)
		return nil
	})
	if err != nil {
		return res, err
	}
	res.Log = rep
	res.Replayed = len(records)
	if len(records) == 0 {
		return res, fmt.Errorf("samplelog: no scored records to replay in %s (records=%d, unscored=%d, filtered=%d)",
			dir, rep.Records, res.SkippedUnscored, res.SkippedFiltered)
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > len(records) {
		workers = len(records)
	}
	chunk := (len(records) + workers - 1) / workers
	parts, err := parallel.Map(ctx, workers, parallel.Options{Workers: workers}, func(_ context.Context, w int) (btStats, error) {
		lo := w * chunk
		hi := min(lo+chunk, len(records))
		cand := candidate.Compile()
		var env *anomaly.Compiled
		if runCascade {
			env = opts.Envelope.Compile()
		}
		st := btStats{perClass: make(map[string]*btClass)}
		for _, rec := range records[lo:hi] {
			st.observe(cand, rec)
			if env != nil {
				st.observeCascade(env, cascadeThreshold, rec)
			}
		}
		return st, nil
	})
	if err != nil {
		return res, err
	}
	total := btStats{perClass: make(map[string]*btClass)}
	for _, st := range parts {
		total.merge(st)
	}
	if total.errors > 0 && total.scored == 0 {
		return res, fmt.Errorf("samplelog: candidate scored none of %d records (feature width mismatch?)", len(records))
	}
	res.Report = total.report(opts.Version)
	if runCascade {
		cb := &CascadeBacktest{
			Threshold:             cascadeThreshold,
			ShortCircuited:        total.cascadeShort,
			PassedOn:              total.cascadePass,
			MalwareShortCircuited: total.malwareShort,
		}
		if replayed := total.cascadeShort + total.cascadePass; replayed > 0 {
			cb.ShortFraction = float64(total.cascadeShort) / float64(replayed)
		}
		res.Cascade = cb
	}
	return res, nil
}
