//go:build race

package samplelog

// raceEnabled lets tests skip allocation-count assertions: the race
// detector's instrumentation forces escapes the uninstrumented hot path
// does not have.
const raceEnabled = true
