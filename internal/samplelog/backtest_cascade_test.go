package samplelog

import (
	"context"
	"testing"

	"twosmart/internal/anomaly"
	"twosmart/internal/dataset"
	"twosmart/internal/workload"
)

func cascadeEnvelope(t *testing.T, data *dataset.Dataset) *anomaly.Envelope {
	t.Helper()
	var benign [][]float64
	for _, ins := range data.Instances {
		if workload.Class(ins.Label) == workload.Benign {
			benign = append(benign, ins.Features)
		}
	}
	env, err := anomaly.Train(data.FeatureNames, benign, anomaly.TrainConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// TestBacktestCascade replays a scored log through the cascade envelope
// and checks the section against a straight sequential recount: the
// short/pass split, the short fraction and the safety number (recorded
// malware verdicts the envelope would have suppressed).
func TestBacktestCascade(t *testing.T) {
	live, _, data := fixtures(t)
	env := cascadeEnvelope(t, data)
	dir := t.TempDir()
	n := writeScoredLog(t, dir, live, data)

	res, err := Backtest(context.Background(), dir, live, BacktestOptions{
		Version: 1, Workers: 4, Envelope: env,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cascade == nil {
		t.Fatal("cascade section missing")
	}
	if res.Cascade.Threshold != env.Threshold {
		t.Fatalf("threshold %v, want envelope default %v", res.Cascade.Threshold, env.Threshold)
	}

	// Independent recount straight off the log records.
	var wantShort, wantPass, wantMalShort uint64
	rep, err := ReadDir(dir, func(r Record) error {
		if !r.Scored() {
			return nil
		}
		if env.Score(r.Features) <= env.Threshold {
			wantShort++
			if r.Malware() {
				wantMalShort++
			}
		} else {
			wantPass++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != n {
		t.Fatalf("recount saw %d records, want %d", rep.Records, n)
	}
	if res.Cascade.ShortCircuited != wantShort || res.Cascade.PassedOn != wantPass {
		t.Fatalf("cascade split %d/%d, want %d/%d",
			res.Cascade.ShortCircuited, res.Cascade.PassedOn, wantShort, wantPass)
	}
	if res.Cascade.MalwareShortCircuited != wantMalShort {
		t.Fatalf("safety number %d, want %d", res.Cascade.MalwareShortCircuited, wantMalShort)
	}
	wantFrac := float64(wantShort) / float64(n)
	if res.Cascade.ShortFraction != wantFrac {
		t.Fatalf("short fraction %v, want %v", res.Cascade.ShortFraction, wantFrac)
	}
	if wantShort == 0 {
		t.Fatal("fixture corpus produced no short-circuits; cascade replay untested")
	}

	// A huge override short-circuits everything — every recorded malware
	// verdict becomes a safety violation.
	res, err = Backtest(context.Background(), dir, live, BacktestOptions{
		Envelope: env, CascadeThreshold: 1e18,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cascade.ShortCircuited != uint64(n) || res.Cascade.PassedOn != 0 {
		t.Fatalf("override split %+v, want all short", res.Cascade)
	}
	if res.Cascade.MalwareShortCircuited == 0 {
		t.Fatal("expected recorded malware verdicts to be counted as short-circuited under the wide-open override")
	}

	// Negative knob skips the cascade replay entirely.
	res, err = Backtest(context.Background(), dir, live, BacktestOptions{
		Envelope: env, CascadeThreshold: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cascade != nil {
		t.Fatalf("cascade section present despite negative threshold: %+v", res.Cascade)
	}

	// Width mismatch is refused up front.
	bad := *env
	bad.Features = env.Features[:3]
	bad.Lo, bad.Hi, bad.InvWidth = env.Lo[:3], env.Hi[:3], env.InvWidth[:3]
	if _, err := Backtest(context.Background(), dir, live, BacktestOptions{Envelope: &bad}); err == nil {
		t.Fatal("mismatched envelope width must error")
	}
}
