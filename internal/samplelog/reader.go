package samplelog

import (
	"fmt"
	"os"
	"path/filepath"
)

// SegmentReport is one segment's scan outcome inside a VerifyReport.
type SegmentReport struct {
	// Name is the segment file name (seg-00000001.slog).
	Name string `json:"name"`
	// Bytes is the segment's on-disk size.
	Bytes int64 `json:"bytes"`
	SegmentStats
}

// VerifyReport is a whole-directory scan: per-segment stats plus the log
// totals an operator (or CI assertion) cares about.
type VerifyReport struct {
	Segments []SegmentReport `json:"segments"`
	// Records is the total valid record count across all segments.
	Records int `json:"records"`
	// ScoredRecords counts records carrying FlagScored — the backtestable
	// subset.
	ScoredRecords int `json:"scored_records"`
	// TornBytes is the crash-torn tail length (only ever on the newest
	// segment of a cleanly rotated log).
	TornBytes int64 `json:"torn_bytes"`
	// Corrupted counts checksum-mismatch records across all segments; a
	// non-zero count means the disk lied somewhere a crash cannot reach.
	Corrupted int `json:"corrupted"`
	// FirstNanos/LastNanos bound the record window (0 when empty).
	FirstNanos int64 `json:"first_nanos"`
	LastNanos  int64 `json:"last_nanos"`
}

// ReadDir scans every segment of a log directory in append order,
// handing each valid record to fn (when non-nil). Torn tails and
// corruption are folded into the report, never surfaced as errors; only
// an unreadable file, a bad header or a fn error fail the scan.
func ReadDir(dir string, fn func(Record) error) (VerifyReport, error) {
	var rep VerifyReport
	paths, err := SegmentFiles(dir)
	if err != nil {
		return rep, err
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return rep, err
		}
		st, err := DecodeSegment(data, func(r Record) error {
			if rep.FirstNanos == 0 || r.Nanos < rep.FirstNanos {
				rep.FirstNanos = r.Nanos
			}
			if r.Nanos > rep.LastNanos {
				rep.LastNanos = r.Nanos
			}
			if r.Scored() {
				rep.ScoredRecords++
			}
			if fn != nil {
				return fn(r)
			}
			return nil
		})
		if err != nil {
			return rep, fmt.Errorf("samplelog: segment %s: %w", filepath.Base(path), err)
		}
		rep.Segments = append(rep.Segments, SegmentReport{
			Name:         filepath.Base(path),
			Bytes:        int64(len(data)),
			SegmentStats: st,
		})
		rep.Records += st.Records
		rep.TornBytes += st.TornBytes
		rep.Corrupted += st.Corrupted
	}
	return rep, nil
}

// Verify is ReadDir without a record callback: the integrity pass the
// crash-recovery CI step (and smartctl logverify) runs against a log
// that may have been SIGKILLed mid-write.
func Verify(dir string) (VerifyReport, error) { return ReadDir(dir, nil) }
