package samplelog

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"twosmart/internal/core"
	"twosmart/internal/corpus"
	"twosmart/internal/dataset"
)

func testRecord(i int) Record {
	return Record{
		Nanos:        1_700_000_000_000_000_000 + int64(i)*1_000_000,
		Stream:       uint32(i % 7),
		App:          fmt.Sprintf("app-%d", i%3),
		ModelVersion: uint32(1 + i%2),
		Flags:        FlagScored | uint8(i%2), // alternate FlagMalware
		Class:        uint8(i % 5),
		Score:        float64(i) / 97,
		Features:     []float64{float64(i), float64(i) * 0.5, -float64(i), math.Pi},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	cases := []Record{
		testRecord(0),
		testRecord(41),
		{Nanos: -1, Score: math.Inf(1)}, // empty app, no features
		{App: "x", Features: []float64{}, Flags: FlagAlarm}, // zero-width vector
		{App: string(bytes.Repeat([]byte("a"), MaxApp)), Features: make([]float64, MaxFeatures)},
	}
	for i, want := range cases {
		buf, err := AppendRecord(nil, want)
		if err != nil {
			t.Fatalf("case %d: append: %v", i, err)
		}
		got, n, err := DecodeRecord(buf)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if n != len(buf) {
			t.Fatalf("case %d: consumed %d of %d bytes", i, n, len(buf))
		}
		if len(want.Features) == 0 {
			want.Features = got.Features // nil vs empty both encode as zero count
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d: round trip mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestAppendRecordBounds(t *testing.T) {
	if _, err := AppendRecord(nil, Record{App: string(bytes.Repeat([]byte("a"), MaxApp+1))}); err == nil {
		t.Fatal("oversized app accepted")
	}
	if _, err := AppendRecord(nil, Record{Features: make([]float64, MaxFeatures+1)}); err == nil {
		t.Fatal("oversized feature vector accepted")
	}
}

func TestDecodeRecordTorn(t *testing.T) {
	buf, err := AppendRecord(nil, testRecord(3))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeRecord(buf[:cut]); !errors.Is(err, ErrTorn) {
			t.Fatalf("prefix of %d/%d bytes: got %v, want ErrTorn", cut, len(buf), err)
		}
	}
}

func TestDecodeRecordCorrupt(t *testing.T) {
	buf, err := AppendRecord(nil, testRecord(3))
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte and one checksum byte: both must surface as
	// corruption, never as a decoded record.
	for _, pos := range []int{5, len(buf) - 1} {
		mut := append([]byte(nil), buf...)
		mut[pos] ^= 0x40
		if _, _, err := DecodeRecord(mut); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: got %v, want ErrCorrupt", pos, err)
		}
	}
}

// buildSegment encodes a header plus records and returns the bytes and
// each record's end offset.
func buildSegment(t *testing.T, n int) ([]byte, []int) {
	t.Helper()
	buf := AppendHeader(nil, 42)
	ends := make([]int, 0, n)
	for i := 0; i < n; i++ {
		var err error
		buf, err = AppendRecord(buf, testRecord(i))
		if err != nil {
			t.Fatal(err)
		}
		ends = append(ends, len(buf))
	}
	return buf, ends
}

func TestDecodeSegment(t *testing.T) {
	seg, ends := buildSegment(t, 3)
	var got []Record
	st, err := DecodeSegment(seg, func(r Record) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.CreatedNanos != 42 || st.Records != 3 || st.TornBytes != 0 || st.Corrupted != 0 {
		t.Fatalf("clean segment stats: %+v", st)
	}
	if st.ValidBytes != int64(len(seg)) {
		t.Fatalf("valid bytes %d, want %d", st.ValidBytes, len(seg))
	}
	for i, r := range got {
		if !reflect.DeepEqual(r, testRecord(i)) {
			t.Fatalf("record %d mismatch: %+v", i, r)
		}
	}

	// Torn tail: every truncation inside the last record keeps the first
	// two and reports the tear.
	for cut := ends[1] + 1; cut < ends[2]; cut++ {
		st, err := DecodeSegment(seg[:cut], nil)
		if err != nil {
			t.Fatal(err)
		}
		if st.Records != 2 || st.ValidBytes != int64(ends[1]) || st.TornBytes != int64(cut-ends[1]) || st.Corrupted != 0 {
			t.Fatalf("cut at %d: stats %+v", cut, st)
		}
	}

	// Mid-file corruption: a flipped byte in record 1 ends the scan after
	// record 0 with corruption, not a tear.
	mut := append([]byte(nil), seg...)
	mut[ends[0]+9] ^= 0x01
	st, err = DecodeSegment(mut, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 1 || st.Corrupted != 1 || st.TornBytes != 0 {
		t.Fatalf("corrupt segment stats: %+v", st)
	}
}

func TestDecodeHeaderRejects(t *testing.T) {
	hdr := AppendHeader(nil, 1)
	bad := append([]byte(nil), hdr...)
	bad[0] = 'X'
	if _, _, err := DecodeHeader(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad = append([]byte(nil), hdr...)
	bad[5] = FormatVersion + 1
	if _, _, err := DecodeHeader(bad); !errors.Is(err, ErrFormat) {
		t.Fatalf("future format: got %v, want ErrFormat", err)
	}
	if _, _, err := DecodeHeader(hdr[:headerLen-1]); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestWriterRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(WriterConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		if !w.Append(testRecord(i)) {
			t.Fatalf("append %d rejected", i)
		}
	}
	st, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Appended != n || st.Dropped != 0 || st.Segments != 1 {
		t.Fatalf("stats %+v", st)
	}
	var got []Record
	rep, err := ReadDir(dir, func(r Record) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != n || rep.ScoredRecords != n || rep.TornBytes != 0 || rep.Corrupted != 0 {
		t.Fatalf("verify %+v", rep)
	}
	for i, r := range got {
		if !reflect.DeepEqual(r, testRecord(i)) {
			t.Fatalf("record %d read back wrong: %+v", i, r)
		}
	}
	if rep.FirstNanos != testRecord(0).Nanos || rep.LastNanos != testRecord(n-1).Nanos {
		t.Fatalf("window [%d, %d]", rep.FirstNanos, rep.LastNanos)
	}
}

func TestWriterRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(WriterConfig{Dir: dir, SegmentBytes: 512, MaxSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Slow-feed the ring in waves so the writer drains many small batches
	// and crosses the 512-byte segment bound over and over.
	for i := 0; i < 200; i++ {
		w.Append(testRecord(i))
		if i%5 == 4 {
			time.Sleep(2 * time.Millisecond)
		}
	}
	st, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments < 4 {
		t.Fatalf("expected rotations, stats %+v", st)
	}
	if st.Pruned == 0 {
		t.Fatalf("expected pruning, stats %+v", st)
	}
	paths, err := SegmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) > 3 {
		t.Fatalf("%d segments on disk, retention bound 3", len(paths))
	}
	if _, err := Verify(dir); err != nil {
		t.Fatal(err)
	}
}

func TestWriterRecoversTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(WriterConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		w.Append(testRecord(i))
	}
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail the way a crash mid-write would: chop the last few
	// bytes of the newest segment.
	paths, err := SegmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := paths[len(paths)-1]
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, info.Size()-5); err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TornBytes == 0 || rep.Records != n-1 {
		t.Fatalf("pre-recovery verify %+v", rep)
	}

	// Reopening truncates the tear and starts a fresh segment.
	w, err = OpenWriter(WriterConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	w.Append(testRecord(n))
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err = Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TornBytes != 0 || rep.Corrupted != 0 {
		t.Fatalf("post-recovery verify %+v", rep)
	}
	if rep.Records != n {
		t.Fatalf("post-recovery records %d, want %d", rep.Records, n)
	}
}

func TestRecoverKeepsCorruption(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(WriterConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		w.Append(testRecord(i))
	}
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	paths, _ := SegmentFiles(dir)
	path := paths[0]
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerLen+40] ^= 0x01 // mid-file, inside an early record
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Corrupted != 1 {
		t.Fatalf("recover stats %+v", st)
	}
	// Corruption is evidence, not a tear: the file must not shrink.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != int64(len(data)) {
		t.Fatalf("recover truncated a corrupt file: %d -> %d bytes", len(data), info.Size())
	}
}

func TestAppendAfterClose(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(WriterConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Append(testRecord(0)) {
		t.Fatal("append after close accepted")
	}
	if w.AppendBatch([]Record{testRecord(0), testRecord(1)}) != 0 {
		t.Fatal("batch append after close accepted")
	}
	if _, err := w.Close(); err != nil {
		t.Fatal(err) // double close is safe
	}
}

func TestAppendBatch(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(WriterConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	batch := make([]Record, n)
	for i := range batch {
		batch[i] = testRecord(i)
	}
	if got := w.AppendBatch(batch); got != n {
		t.Fatalf("AppendBatch queued %d, want %d", got, n)
	}
	if got := w.AppendBatch(nil); got != 0 {
		t.Fatalf("empty AppendBatch queued %d", got)
	}
	stats, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Appended != n || stats.Dropped != 0 {
		t.Fatalf("stats %+v, want %d appended and no drops", stats, n)
	}
	var i int
	if _, err := ReadDir(dir, func(r Record) error {
		want := testRecord(i)
		if r.Stream != want.Stream || r.App != want.App || !reflect.DeepEqual(r.Features, want.Features) {
			t.Fatalf("record %d = %+v, want %+v", i, r, want)
		}
		i++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if i != n {
		t.Fatalf("read back %d records, want %d", i, n)
	}
}

func TestAppendBatchShedsOldest(t *testing.T) {
	dir := t.TempDir()
	// A batch larger than the ring: the tail of the batch must survive
	// (drop-oldest), with the overflow counted as dropped.
	w, err := OpenWriter(WriterConfig{Dir: dir, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]Record, 20)
	for i := range batch {
		batch[i] = testRecord(i)
	}
	if got := w.AppendBatch(batch); got != 20 {
		t.Fatalf("AppendBatch queued %d, want 20", got)
	}
	stats, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Appended+stats.Dropped != 20 {
		t.Fatalf("stats %+v: appended+dropped != 20", stats)
	}
	if stats.Dropped == 0 {
		t.Fatalf("stats %+v: a 20-record batch through an 8-slot ring must shed", stats)
	}
	// Whatever survived must be a suffix of the batch, in order
	// (testRecord nanos step by 1ms per index).
	var got []int64
	if _, err := ReadDir(dir, func(r Record) error {
		got = append(got, r.Nanos)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for k := 1; k < len(got); k++ {
		if got[k] != got[k-1]+1_000_000 {
			t.Fatalf("surviving records not contiguous: %v", got)
		}
	}
	if len(got) == 0 || got[len(got)-1] != batch[19].Nanos {
		t.Fatalf("newest record lost: %v", got)
	}
}

func TestWriterConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(WriterConfig{Dir: dir, QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				w.Append(testRecord(g*per + i))
			}
		}(g)
	}
	wg.Wait()
	st, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Appended+st.Dropped != goroutines*per {
		t.Fatalf("appended %d + dropped %d != %d", st.Appended, st.Dropped, goroutines*per)
	}
	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(rep.Records) != st.Appended {
		t.Fatalf("disk has %d records, writer appended %d", rep.Records, st.Appended)
	}
}

func TestWriterSurvivesDiskLoss(t *testing.T) {
	dir := t.TempDir()
	logDir := filepath.Join(dir, "log")
	w, err := OpenWriter(WriterConfig{Dir: logDir, SegmentBytes: headerLen + 1})
	if err != nil {
		t.Fatal(err)
	}
	w.Append(testRecord(0))
	time.Sleep(10 * time.Millisecond)
	// Take the directory away: the next rotation fails, the failure goes
	// sticky, and Append keeps returning without ever blocking.
	if err := os.RemoveAll(logDir); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 100; i++ {
		w.Append(testRecord(i))
		time.Sleep(time.Millisecond)
	}
	st, err := w.Close()
	if err == nil {
		t.Fatalf("expected sticky disk error, stats %+v", st)
	}
	if st.Dropped == 0 {
		t.Fatalf("expected drops after disk loss, stats %+v", st)
	}
}

var (
	fixOnce sync.Once
	fixErr  error
	fixData *dataset.Dataset
	fixDets [2]*core.Detector
)

func fixtures(t *testing.T) (*core.Detector, *core.Detector, *dataset.Dataset) {
	t.Helper()
	fixOnce.Do(func() {
		data, err := corpus.Collect(corpus.Config{
			Scale:       0.001,
			MinPerClass: 24,
			Budget:      30000,
			Seed:        7,
			Omniscient:  true,
		})
		if err != nil {
			fixErr = err
			return
		}
		fixData, err = data.SelectByName(core.CommonFeatures)
		if err != nil {
			fixErr = err
			return
		}
		for i, seed := range []int64{5, 17} {
			fixDets[i], fixErr = core.Train(fixData, core.TrainConfig{Seed: seed})
			if fixErr != nil {
				return
			}
		}
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixDets[0], fixDets[1], fixData
}

// writeScoredLog scores every dataset sample with live and logs it the
// way the serving tier does, returning the record count.
func writeScoredLog(t *testing.T, dir string, live *core.Detector, data *dataset.Dataset) int {
	t.Helper()
	w, err := OpenWriter(WriterConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	cd := live.Compile()
	for i, ins := range data.Instances {
		v, err := cd.Detect(ins.Features)
		if err != nil {
			t.Fatal(err)
		}
		score, err := cd.MalwareScore(ins.Features)
		if err != nil {
			t.Fatal(err)
		}
		flags := FlagScored
		if v.Malware {
			flags |= FlagMalware
		}
		w.Append(Record{
			Nanos:        1_700_000_000_000_000_000 + int64(i),
			Stream:       uint32(i),
			App:          "backtest-app",
			ModelVersion: 1,
			Flags:        flags,
			Class:        uint8(v.PredictedClass),
			Score:        score,
			Features:     ins.Features,
		})
	}
	st, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Dropped != 0 {
		t.Fatalf("fixture log dropped %d records", st.Dropped)
	}
	return int(st.Appended)
}

func TestBacktestSelfIsClean(t *testing.T) {
	live, _, data := fixtures(t)
	dir := t.TempDir()
	n := writeScoredLog(t, dir, live, data)
	res, err := Backtest(context.Background(), dir, live, BacktestOptions{Version: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replayed != n || res.Report.Scored != uint64(n) {
		t.Fatalf("replayed %d / scored %d, want %d", res.Replayed, res.Report.Scored, n)
	}
	if res.Report.Disagreements != 0 || res.Report.VerdictDivergence != 0 || res.Report.MaxScoreDelta != 0 {
		t.Fatalf("self backtest diverged: %+v", res.Report)
	}
	if len(res.Report.PerClass) == 0 {
		t.Fatal("per-class stats missing")
	}
}

func TestBacktestCandidate(t *testing.T) {
	live, cand, data := fixtures(t)
	dir := t.TempDir()
	n := writeScoredLog(t, dir, live, data)
	res, err := Backtest(context.Background(), dir, cand, BacktestOptions{Version: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.CandidateVersion != 2 || res.Report.Scored != uint64(n) {
		t.Fatalf("report %+v", res.Report)
	}
	// Differently-seeded models almost surely score differently somewhere;
	// what the test pins is that the comparison ran over every record.
	if res.Log.Records != n || res.SkippedUnscored != 0 || res.SkippedFiltered != 0 {
		t.Fatalf("result %+v", res)
	}
}

func TestBacktestFilters(t *testing.T) {
	live, _, data := fixtures(t)
	dir := t.TempDir()
	n := writeScoredLog(t, dir, live, data)

	// Unscored (gateway-tier) records are skipped.
	w, err := OpenWriter(WriterConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	w.Append(Record{Nanos: 5, App: "gw", Features: data.Instances[0].Features})
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := Backtest(context.Background(), dir, live, BacktestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SkippedUnscored != 1 || res.Replayed != n {
		t.Fatalf("unscored skip: %+v", res)
	}

	// Window and app filters.
	res, err = Backtest(context.Background(), dir, live, BacktestOptions{
		FromNanos: 1_700_000_000_000_000_000,
		ToNanos:   1_700_000_000_000_000_000 + int64(n/2) - 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replayed != n/2 {
		t.Fatalf("window replayed %d, want %d", res.Replayed, n/2)
	}
	if _, err := Backtest(context.Background(), dir, live, BacktestOptions{App: "nope"}); err == nil {
		t.Fatal("empty replay set must error")
	}
}
