// Package samplelog is the durable sample log behind the serving tier: a
// segmented, checksummed, append-only binary record of every sample the
// fleet scored — (stream id, app, feature vector, verdict, score, model
// version, nanos) — written off the serving hot path so recorded reality
// can be backtested against any registry version (smartctl backtest) or
// replayed as time-compressed fleet load (smartload -replay).
//
// Durability model: the log is written by one background goroutine fed
// through a bounded drop-oldest ring with a feature-buffer free list —
// the same backpressure machinery the session engine uses for ingress —
// so a slow or failing disk sheds log records (counted in
// samplelog_dropped_total) instead of ever stalling verdict emission.
// Records are framed with a per-record CRC32C so a crash that tears the
// tail of a segment truncates cleanly at the last valid checksum on
// reopen; segments carry a format-versioned header, rotate at a size
// bound and are pruned oldest-first under a retention cap.
//
// Layout (all integers big-endian, floats IEEE-754 bits):
//
//	segment  := header record*
//	header   := magic "2SLG" | uint16 format | uint16 reserved | uint64 createdNanos
//	record   := uint32 payloadLen | payload | uint32 crc32c(payload)
//	payload  := uint64 nanos | uint32 stream | uint16 appLen | app |
//	            uint32 modelVersion | uint8 flags | uint8 class |
//	            float64 score | uint16 numFeatures | float64*numFeatures
//
// Payloads are strictly sized — trailing bytes after the last field are
// a decode error — so the encoding is canonical (AppendRecord∘DecodeRecord
// is the identity, pinned by FuzzDecodeRecord). Decoders never panic and
// enforce resource bounds before allocation.
package samplelog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// FormatVersion is the segment format generation, written into every
// segment header. Bump it on any incompatible layout change; readers
// refuse segments from a different generation with ErrFormat.
const FormatVersion = 1

// Codec resource bounds, enforced during decode before any allocation.
const (
	// MaxApp bounds the encoded app-name length of one record.
	MaxApp = 1 << 10
	// MaxFeatures bounds the feature vector width of one record
	// (mirrors wire.MaxFeatures — a record is a scored wire sample).
	MaxFeatures = 1 << 12
	// MaxPayload bounds one record's payload, derived from the field
	// bounds above.
	MaxPayload = 8 + 4 + 2 + MaxApp + 4 + 1 + 1 + 8 + 2 + 8*MaxFeatures
)

// headerLen is the fixed segment header size.
const headerLen = 4 + 2 + 2 + 8

// magic opens every segment file.
var magic = [4]byte{'2', 'S', 'L', 'G'}

// castagnoli is the CRC32C table used for record checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record flag bits.
const (
	// FlagMalware mirrors the recorded verdict's malware decision.
	FlagMalware uint8 = 1 << 0
	// FlagAlarm mirrors the stream monitor's smoothed alarm state at
	// record time.
	FlagAlarm uint8 = 1 << 1
	// FlagScored marks a record written by a scoring tier: its verdict,
	// score and class fields are meaningful. Gateway-tier records (taken
	// at the forwarding edge, before any shard scored them) leave it
	// clear; backtests skip them, replay uses them like any other.
	FlagScored uint8 = 1 << 2
	// FlagShortCircuit marks a record whose verdict came from the
	// stage-0 anomaly envelope (clear benign, full detector never ran).
	// Pre-cascade logs simply never set the bit.
	FlagShortCircuit uint8 = 1 << 3
)

// Record is one logged sample: what arrived, what the serving tier
// decided about it, and under which model generation.
type Record struct {
	// Nanos is the sample's ingress wall-clock (unix nanos) — replay
	// pacing reproduces the gaps between successive records.
	Nanos int64
	// Stream is the wire stream id the sample arrived on.
	Stream uint32
	// App is the stream's application name.
	App string
	// ModelVersion is the registry version that scored the sample
	// (0 outside a registry, or at the gateway tier).
	ModelVersion uint32
	// Flags carries FlagMalware/FlagAlarm/FlagScored/FlagShortCircuit.
	Flags uint8
	// Class is the recorded stage-1 class (workload.Class), meaningful
	// only with FlagScored.
	Class uint8
	// Score is the recorded malware ranking score.
	Score float64
	// Features is the sample's feature vector.
	Features []float64
}

// Scored reports whether the record carries a meaningful verdict.
func (r Record) Scored() bool { return r.Flags&FlagScored != 0 }

// Malware reports the recorded malware decision.
func (r Record) Malware() bool { return r.Flags&FlagMalware != 0 }

// ShortCircuited reports whether the stage-0 envelope decided the record.
func (r Record) ShortCircuited() bool { return r.Flags&FlagShortCircuit != 0 }

// Typed decode errors.
var (
	// ErrFormat is a segment header from a different format generation.
	ErrFormat = errors.New("samplelog: unsupported segment format")
	// ErrCorrupt is a record whose framing is intact but whose checksum
	// does not match — mid-file corruption, not a torn tail.
	ErrCorrupt = errors.New("samplelog: record checksum mismatch")
	// ErrTorn is a record cut short by the end of the segment — the torn
	// tail a crash leaves behind; everything before it is valid.
	ErrTorn = errors.New("samplelog: torn record at end of segment")
)

// payloadLen returns the encoded payload size of r.
func payloadLen(r Record) int {
	return 8 + 4 + 2 + len(r.App) + 4 + 1 + 1 + 8 + 2 + 8*len(r.Features)
}

// recordLen returns the full framed size of r (length prefix + payload +
// checksum).
func recordLen(r Record) int { return 4 + payloadLen(r) + 4 }

// AppendRecord appends r's framed encoding to buf and returns the
// extended slice. It validates the same bounds DecodeRecord enforces so
// everything written is readable.
func AppendRecord(buf []byte, r Record) ([]byte, error) {
	if len(r.App) > MaxApp {
		return buf, fmt.Errorf("samplelog: app name %d bytes, max %d", len(r.App), MaxApp)
	}
	if len(r.Features) > MaxFeatures {
		return buf, fmt.Errorf("samplelog: %d features, max %d", len(r.Features), MaxFeatures)
	}
	n := payloadLen(r)
	buf = binary.BigEndian.AppendUint32(buf, uint32(n))
	start := len(buf)
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.Nanos))
	buf = binary.BigEndian.AppendUint32(buf, r.Stream)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(r.App)))
	buf = append(buf, r.App...)
	buf = binary.BigEndian.AppendUint32(buf, r.ModelVersion)
	buf = append(buf, r.Flags, r.Class)
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(r.Score))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(r.Features)))
	for _, f := range r.Features {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(f))
	}
	sum := crc32.Checksum(buf[start:], castagnoli)
	return binary.BigEndian.AppendUint32(buf, sum), nil
}

// DecodeRecord decodes one framed record from the front of data,
// returning the record and how many bytes it consumed. A record cut
// short by the end of data returns ErrTorn; an intact frame whose
// checksum does not match returns ErrCorrupt. The returned record's App
// and Features are fresh allocations, safe to retain.
func DecodeRecord(data []byte) (Record, int, error) {
	if len(data) < 4 {
		return Record{}, 0, ErrTorn
	}
	n := int(binary.BigEndian.Uint32(data))
	if n > MaxPayload {
		return Record{}, 0, fmt.Errorf("samplelog: payload %d bytes, max %d", n, MaxPayload)
	}
	if len(data) < 4+n+4 {
		return Record{}, 0, ErrTorn
	}
	payload := data[4 : 4+n]
	want := binary.BigEndian.Uint32(data[4+n:])
	if crc32.Checksum(payload, castagnoli) != want {
		return Record{}, 0, ErrCorrupt
	}
	r, err := decodePayload(payload)
	if err != nil {
		return Record{}, 0, err
	}
	return r, 4 + n + 4, nil
}

// decodePayload decodes a checksum-verified payload. Strictly sized:
// trailing bytes are an error, so the encoding is canonical.
func decodePayload(p []byte) (Record, error) {
	var r Record
	if len(p) < 8+4+2 {
		return r, errors.New("samplelog: payload too short")
	}
	r.Nanos = int64(binary.BigEndian.Uint64(p))
	r.Stream = binary.BigEndian.Uint32(p[8:])
	appLen := int(binary.BigEndian.Uint16(p[12:]))
	if appLen > MaxApp {
		return r, fmt.Errorf("samplelog: app name %d bytes, max %d", appLen, MaxApp)
	}
	p = p[14:]
	if len(p) < appLen+4+1+1+8+2 {
		return r, errors.New("samplelog: payload too short")
	}
	r.App = string(p[:appLen])
	p = p[appLen:]
	r.ModelVersion = binary.BigEndian.Uint32(p)
	r.Flags = p[4]
	r.Class = p[5]
	r.Score = math.Float64frombits(binary.BigEndian.Uint64(p[6:]))
	nf := int(binary.BigEndian.Uint16(p[14:]))
	if nf > MaxFeatures {
		return r, fmt.Errorf("samplelog: %d features, max %d", nf, MaxFeatures)
	}
	p = p[16:]
	if len(p) != 8*nf {
		return r, fmt.Errorf("samplelog: payload carries %d feature bytes, want %d", len(p), 8*nf)
	}
	r.Features = make([]float64, nf)
	for i := range r.Features {
		r.Features[i] = math.Float64frombits(binary.BigEndian.Uint64(p[8*i:]))
	}
	return r, nil
}

// AppendHeader appends a segment header stamped with createdNanos.
func AppendHeader(buf []byte, createdNanos int64) []byte {
	buf = append(buf, magic[:]...)
	buf = binary.BigEndian.AppendUint16(buf, FormatVersion)
	buf = binary.BigEndian.AppendUint16(buf, 0) // reserved
	return binary.BigEndian.AppendUint64(buf, uint64(createdNanos))
}

// DecodeHeader validates a segment header and returns its creation stamp
// and the header length consumed.
func DecodeHeader(data []byte) (createdNanos int64, n int, err error) {
	if len(data) < headerLen {
		return 0, 0, fmt.Errorf("samplelog: segment header %d bytes, want %d", len(data), headerLen)
	}
	if [4]byte(data[:4]) != magic {
		return 0, 0, errors.New("samplelog: bad segment magic")
	}
	if v := binary.BigEndian.Uint16(data[4:]); v != FormatVersion {
		return 0, 0, fmt.Errorf("%w: segment format v%d, reader speaks v%d", ErrFormat, v, FormatVersion)
	}
	return int64(binary.BigEndian.Uint64(data[8:])), headerLen, nil
}

// SegmentStats is what scanning one segment's bytes found: valid records,
// mid-file corruption, and the torn tail a crash left behind.
type SegmentStats struct {
	// CreatedNanos is the header's creation stamp.
	CreatedNanos int64 `json:"created_nanos"`
	// Records is how many valid records the segment holds.
	Records int `json:"records"`
	// ValidBytes is the byte offset just past the last valid record —
	// where a recovery truncation cuts.
	ValidBytes int64 `json:"valid_bytes"`
	// TornBytes is how many trailing bytes belong to a record cut short
	// by a crash (0 on a clean segment).
	TornBytes int64 `json:"torn_bytes"`
	// Corrupted counts checksum-mismatch records; the scan cannot resync
	// past the first one, so everything after it is also counted here.
	Corrupted int `json:"corrupted"`
}

// DecodeSegment scans one segment's bytes: the header, then records until
// the data ends, tears, or corrupts. fn (when non-nil) receives every
// valid record in order; a non-nil fn error aborts the scan and is
// returned. Torn tails and corruption are reported in the stats, not as
// errors — only a bad header or a fn error fail the scan.
func DecodeSegment(data []byte, fn func(Record) error) (SegmentStats, error) {
	var st SegmentStats
	created, off, err := DecodeHeader(data)
	if err != nil {
		return st, err
	}
	st.CreatedNanos = created
	st.ValidBytes = int64(off)
	for off < len(data) {
		rec, n, err := DecodeRecord(data[off:])
		if err != nil {
			if errors.Is(err, ErrTorn) {
				st.TornBytes = int64(len(data) - off)
			} else {
				// Framing is length-prefixed: past a corrupt record there
				// is no resync point, so the remainder counts as one run
				// of corruption.
				st.Corrupted++
			}
			return st, nil
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return st, err
			}
		}
		off += n
		st.Records++
		st.ValidBytes = int64(off)
	}
	return st, nil
}
