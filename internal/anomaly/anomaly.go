// Package anomaly is the stage-0 pre-filter of the detection cascade: a
// one-class quantile envelope over the HPC features, trained from benign
// samples only. Samples that land inside the envelope are "clear benign"
// and short-circuit serving before stage-1 MLR ever runs; anything that
// exceeds the envelope falls through to the full two-stage detector.
//
// The model is deliberately tiny — per-feature [lo, hi] bounds plus a
// normalizing scale — because its whole value is being cheaper than
// stage-1 by an order of magnitude. The anomaly score of a sample is its
// worst normalized exceedance over any feature: 0 for a sample inside the
// envelope on every axis, growing linearly as any feature escapes. The
// short-circuit rule is score <= threshold.
//
// The threshold is not hand-picked: Train calibrates it on a held-out
// benign split so that at most Budget of held-out benign samples score
// above it (and would therefore be passed onward to the full detector by
// mistake). The budget bounds wasted stage-1 work on benign traffic; the
// safety direction — malware that scores inside the envelope and gets
// short-circuited — is measured empirically by `smartctl backtest` and
// the experiment sweep, never assumed.
//
// Like every classifier family in this repository, the envelope lowers to
// an allocation-free evaluator via Compile: a flat slab of thresholds
// scored with zero heap allocations per sample, bit-identical to the
// interpreted path (pinned by property test).
package anomaly

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Envelope is a trained one-class quantile envelope. The JSON shape is
// the persistence format (see internal/persist.MarshalEnvelope); all
// fields are exported data, no behavior state.
type Envelope struct {
	// Features names the feature axes, in sample order. A sample scored
	// against the envelope must have exactly this width and ordering.
	Features []string `json:"features"`
	// Lo and Hi are the per-feature envelope bounds (fit quantiles of the
	// benign corpus).
	Lo []float64 `json:"lo"`
	Hi []float64 `json:"hi"`
	// InvWidth is the per-feature normalizing scale: 1 / (Hi-Lo) with a
	// floor for degenerate (constant) features. Stored rather than
	// recomputed so the interpreted and compiled evaluators share the
	// exact same float operations, bit for bit.
	InvWidth []float64 `json:"inv_width"`
	// Threshold is the calibrated short-circuit threshold: samples with
	// Score <= Threshold are clear benign. Serving may override it.
	Threshold float64 `json:"threshold"`
	// Budget is the false-short-circuit budget the threshold was
	// calibrated to: at most this fraction of held-out benign samples
	// scored above Threshold at training time.
	Budget float64 `json:"budget"`
}

// NumFeatures returns the envelope's feature width.
func (e *Envelope) NumFeatures() int { return len(e.Features) }

// Validate checks internal consistency: parallel slices, ordered finite
// bounds, positive scales, a non-negative threshold. A nil envelope is
// invalid (callers gate on nil for "cascade disabled" before validating).
func (e *Envelope) Validate() error {
	if e == nil {
		return errors.New("anomaly: nil envelope")
	}
	if len(e.Features) == 0 {
		return errors.New("anomaly: envelope has no features")
	}
	if len(e.Lo) != len(e.Features) || len(e.Hi) != len(e.Features) || len(e.InvWidth) != len(e.Features) {
		return fmt.Errorf("anomaly: bound widths lo=%d hi=%d inv_width=%d, want %d",
			len(e.Lo), len(e.Hi), len(e.InvWidth), len(e.Features))
	}
	seen := make(map[string]bool, len(e.Features))
	for i, name := range e.Features {
		if name == "" {
			return fmt.Errorf("anomaly: feature %d has empty name", i)
		}
		if seen[name] {
			return fmt.Errorf("anomaly: duplicate feature %q", name)
		}
		seen[name] = true
		lo, hi, iw := e.Lo[i], e.Hi[i], e.InvWidth[i]
		if math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsNaN(hi) || math.IsInf(hi, 0) {
			return fmt.Errorf("anomaly: feature %q has non-finite bounds [%v, %v]", name, lo, hi)
		}
		if lo > hi {
			return fmt.Errorf("anomaly: feature %q has inverted bounds [%v, %v]", name, lo, hi)
		}
		if !(iw > 0) || math.IsInf(iw, 0) {
			return fmt.Errorf("anomaly: feature %q has non-positive scale %v", name, iw)
		}
	}
	if math.IsNaN(e.Threshold) || math.IsInf(e.Threshold, 0) || e.Threshold < 0 {
		return fmt.Errorf("anomaly: threshold %v out of range", e.Threshold)
	}
	if math.IsNaN(e.Budget) || e.Budget < 0 || e.Budget >= 1 {
		return fmt.Errorf("anomaly: budget %v outside [0, 1)", e.Budget)
	}
	return nil
}

// Score returns the sample's anomaly score: the worst normalized
// exceedance over any feature, 0 when the sample is inside the envelope
// on every axis. features must have exactly NumFeatures elements — width
// is the caller's invariant on the hot path, checked once at bind time.
func (e *Envelope) Score(features []float64) float64 {
	var worst float64
	for i, v := range features {
		if d := (e.Lo[i] - v) * e.InvWidth[i]; d > worst {
			worst = d
		}
		if d := (v - e.Hi[i]) * e.InvWidth[i]; d > worst {
			worst = d
		}
	}
	return worst
}

// Compiled is the envelope lowered into one flat slab: for each feature,
// [lo, hi, invWidth] packed contiguously so a score is a single linear
// scan with zero heap allocations. The arithmetic mirrors Envelope.Score
// operation for operation, so compiled and interpreted scores are
// bit-identical. A Compiled value holds no mutable state and, unlike the
// classifier families' compiled forms, is safe to share across
// goroutines.
type Compiled struct {
	slab []float64 // 3 entries per feature: lo, hi, invWidth
	n    int
}

// Compile lowers the envelope. The caller is expected to have Validated
// it first (registry and persist loads do); Compile itself only copies.
func (e *Envelope) Compile() *Compiled {
	n := len(e.Features)
	c := &Compiled{slab: make([]float64, 3*n), n: n}
	for i := 0; i < n; i++ {
		c.slab[3*i] = e.Lo[i]
		c.slab[3*i+1] = e.Hi[i]
		c.slab[3*i+2] = e.InvWidth[i]
	}
	return c
}

// NumFeatures returns the compiled envelope's feature width.
func (c *Compiled) NumFeatures() int { return c.n }

// Score returns the sample's anomaly score; see Envelope.Score. 0 allocs.
func (c *Compiled) Score(features []float64) float64 {
	var worst float64
	slab := c.slab
	for i, v := range features {
		j := 3 * i
		if d := (slab[j] - v) * slab[j+2]; d > worst {
			worst = d
		}
		if d := (v - slab[j+1]) * slab[j+2]; d > worst {
			worst = d
		}
	}
	return worst
}

// TrainConfig tunes Train. The zero value selects the defaults.
type TrainConfig struct {
	// Budget is the false-short-circuit budget: the calibrated threshold
	// lets at most this fraction of held-out benign samples score above
	// it (and be passed onward as "suspicious" by mistake). Default
	// DefaultBudget.
	Budget float64
	// Margin is the per-feature quantile trimmed off each side when
	// fitting the [lo, hi] bounds, so single outliers in the benign
	// corpus don't stretch the envelope. Default DefaultMargin.
	Margin float64
	// Holdout is the fraction of benign samples withheld from the bound
	// fit and used only to calibrate the threshold. Default 1/3.
	Holdout float64
	// Seed drives the fit/holdout shuffle. The same seed and corpus
	// always produce the same envelope.
	Seed int64
}

const (
	// DefaultBudget passes at most 0.1% of held-out benign onward.
	DefaultBudget = 0.001
	// DefaultMargin trims 1% off each tail when fitting bounds.
	DefaultMargin = 0.01
	// MinSamples is the smallest benign corpus Train accepts.
	MinSamples = 12
)

func (cfg TrainConfig) fill() (TrainConfig, error) {
	if cfg.Budget == 0 {
		cfg.Budget = DefaultBudget
	}
	if cfg.Budget < 0 || cfg.Budget >= 1 {
		return cfg, fmt.Errorf("anomaly: budget %v outside (0, 1)", cfg.Budget)
	}
	if cfg.Margin == 0 {
		cfg.Margin = DefaultMargin
	}
	if cfg.Margin < 0 || cfg.Margin >= 0.5 {
		return cfg, fmt.Errorf("anomaly: margin %v outside [0, 0.5)", cfg.Margin)
	}
	if cfg.Holdout == 0 {
		cfg.Holdout = 1.0 / 3
	}
	if cfg.Holdout <= 0 || cfg.Holdout >= 1 {
		return cfg, fmt.Errorf("anomaly: holdout %v outside (0, 1)", cfg.Holdout)
	}
	return cfg, nil
}

// Train fits an envelope over the named features from benign samples
// only. The corpus is shuffled (deterministically by cfg.Seed) and split:
// the fit portion sets per-feature quantile bounds, the held-out portion
// calibrates the threshold to the budget. Samples must all have exactly
// len(features) values.
func Train(features []string, benign [][]float64, cfg TrainConfig) (*Envelope, error) {
	cfg, err := cfg.fill()
	if err != nil {
		return nil, err
	}
	if len(features) == 0 {
		return nil, errors.New("anomaly: no features")
	}
	if len(benign) < MinSamples {
		return nil, fmt.Errorf("anomaly: %d benign samples, need >= %d", len(benign), MinSamples)
	}
	for i, s := range benign {
		if len(s) != len(features) {
			return nil, fmt.Errorf("anomaly: sample %d has %d features, want %d", i, len(s), len(features))
		}
	}

	order := rand.New(rand.NewSource(cfg.Seed)).Perm(len(benign))
	nHold := int(math.Round(float64(len(benign)) * cfg.Holdout))
	if nHold < 1 {
		nHold = 1
	}
	if nHold > len(benign)-2 {
		nHold = len(benign) - 2
	}
	fit := make([][]float64, 0, len(benign)-nHold)
	hold := make([][]float64, 0, nHold)
	for i, idx := range order {
		if i < nHold {
			hold = append(hold, benign[idx])
		} else {
			fit = append(fit, benign[idx])
		}
	}

	e := &Envelope{
		Features: append([]string(nil), features...),
		Lo:       make([]float64, len(features)),
		Hi:       make([]float64, len(features)),
		InvWidth: make([]float64, len(features)),
		Budget:   cfg.Budget,
	}
	col := make([]float64, len(fit))
	for f := range features {
		for i, s := range fit {
			col[i] = s[f]
		}
		sort.Float64s(col)
		lo := quantile(col, cfg.Margin)
		hi := quantile(col, 1-cfg.Margin)
		width := hi - lo
		if width <= 0 {
			// Constant feature in the fit set: any deviation is measured
			// against the feature's own magnitude so the score stays
			// scale-aware rather than exploding.
			width = math.Max(math.Abs(hi), 1)
		}
		e.Lo[f], e.Hi[f], e.InvWidth[f] = lo, hi, 1/width
	}

	// Calibrate: pick the smallest threshold with at most Budget of the
	// held-out benign scoring above it.
	scores := make([]float64, len(hold))
	for i, s := range hold {
		scores[i] = e.Score(s)
	}
	sort.Float64s(scores)
	k := int(math.Ceil(float64(len(scores))*(1-cfg.Budget))) - 1
	if k < 0 {
		k = 0
	}
	if k >= len(scores) {
		k = len(scores) - 1
	}
	e.Threshold = scores[k]
	if err := e.Validate(); err != nil {
		return nil, fmt.Errorf("anomaly: trained envelope invalid: %w", err)
	}
	return e, nil
}

// PassRate returns the fraction of samples scoring above threshold (those
// the cascade would pass onward to the full detector). Used by training
// reports and the experiment sweep.
func (e *Envelope) PassRate(samples [][]float64, threshold float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	passed := 0
	for _, s := range samples {
		if e.Score(s) > threshold {
			passed++
		}
	}
	return float64(passed) / float64(len(samples))
}

// quantile returns the nearest-rank q-quantile of sorted (ascending).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	k := int(math.Ceil(float64(len(sorted))*q)) - 1
	if k < 0 {
		k = 0
	}
	if k >= len(sorted) {
		k = len(sorted) - 1
	}
	return sorted[k]
}
