package anomaly

import (
	"math"
	"math/rand"
	"testing"
)

// synthBenign draws n benign-like samples: per-feature gaussian around
// distinct centers so the envelope has real structure to fit.
func synthBenign(rng *rand.Rand, n, width int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		s := make([]float64, width)
		for f := range s {
			center := float64(1000 * (f + 1))
			s[f] = center + rng.NormFloat64()*float64(50*(f+1))
		}
		out[i] = s
	}
	return out
}

func names(width int) []string {
	fs := make([]string, width)
	for i := range fs {
		fs[i] = string(rune('a' + i))
	}
	return fs
}

func TestTrainCalibratesToBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	benign := synthBenign(rng, 3000, 4)
	e, err := Train(names(4), benign, TrainConfig{Budget: 0.01, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if e.Budget != 0.01 {
		t.Fatalf("budget = %v, want 0.01", e.Budget)
	}
	// Fresh benign draws from the same distribution should mostly
	// short-circuit: the pass rate tracks the budget loosely (sampling
	// noise on a 1% tail), so assert an order-of-magnitude bound.
	fresh := synthBenign(rng, 3000, 4)
	if pr := e.PassRate(fresh, e.Threshold); pr > 0.1 {
		t.Fatalf("fresh benign pass rate %v, want <= 0.1", pr)
	}
	// On the training corpus itself the calibration is exact-ish: at
	// most ~budget of samples score above the threshold (the held-out
	// split was calibrated to it; the fit split is inside by fiat).
	if pr := e.PassRate(benign, e.Threshold); pr > 0.05 {
		t.Fatalf("train corpus pass rate %v, want <= 0.05", pr)
	}
	// Anomalous samples far outside the envelope must pass through.
	hot := synthBenign(rng, 100, 4)
	for _, s := range hot {
		for f := range s {
			s[f] *= 10
		}
	}
	if pr := e.PassRate(hot, e.Threshold); pr < 0.99 {
		t.Fatalf("anomalous pass rate %v, want >= 0.99", pr)
	}
}

func TestScoreSemantics(t *testing.T) {
	e := &Envelope{
		Features: []string{"x", "y"},
		Lo:       []float64{0, 10},
		Hi:       []float64{1, 20},
		InvWidth: []float64{1, 0.1},
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if s := e.Score([]float64{0.5, 15}); s != 0 {
		t.Fatalf("inside score = %v, want 0", s)
	}
	if s := e.Score([]float64{2, 15}); s != 1 {
		t.Fatalf("one-width exceedance score = %v, want 1", s)
	}
	// Worst axis wins: y is 3 widths out, x only 1.
	if s := e.Score([]float64{2, 50}); s != 3 {
		t.Fatalf("worst-axis score = %v, want 3", s)
	}
}

// TestCompiledEquivalence is the property test the ISSUE pins: compiled
// and interpreted envelopes agree bit-identically on 10k random vectors,
// including vectors far outside the trained range.
func TestCompiledEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		width := 1 + rng.Intn(8)
		benign := synthBenign(rng, 200, width)
		e, err := Train(names(width), benign, TrainConfig{Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		c := e.Compile()
		if c.NumFeatures() != e.NumFeatures() {
			t.Fatalf("compiled width %d, want %d", c.NumFeatures(), e.NumFeatures())
		}
		fv := make([]float64, width)
		for i := 0; i < 10000; i++ {
			for f := range fv {
				// Mix in-envelope, near-edge and far-out magnitudes.
				fv[f] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(8)))
			}
			want := e.Score(fv)
			got := c.Score(fv)
			if math.Float64bits(want) != math.Float64bits(got) {
				t.Fatalf("trial %d vector %d: interpreted %v (%#x) != compiled %v (%#x)",
					trial, i, want, math.Float64bits(want), got, math.Float64bits(got))
			}
		}
	}
}

func TestTrainDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	benign := synthBenign(rng, 500, 4)
	a, err := Train(names(4), benign, TrainConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(names(4), benign, TrainConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if a.Threshold != b.Threshold {
		t.Fatalf("thresholds differ: %v vs %v", a.Threshold, b.Threshold)
	}
	for i := range a.Lo {
		if a.Lo[i] != b.Lo[i] || a.Hi[i] != b.Hi[i] || a.InvWidth[i] != b.InvWidth[i] {
			t.Fatalf("bounds differ at feature %d", i)
		}
	}
}

func TestTrainErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	good := synthBenign(rng, 100, 2)
	cases := []struct {
		name     string
		features []string
		samples  [][]float64
		cfg      TrainConfig
	}{
		{"no features", nil, good, TrainConfig{}},
		{"too few samples", names(2), good[:3], TrainConfig{}},
		{"ragged sample", names(2), append([][]float64{{1}}, good...), TrainConfig{}},
		{"bad budget", names(2), good, TrainConfig{Budget: 1.5}},
		{"bad margin", names(2), good, TrainConfig{Margin: 0.9}},
		{"bad holdout", names(2), good, TrainConfig{Holdout: 2}},
	}
	for _, tc := range cases {
		if _, err := Train(tc.features, tc.samples, tc.cfg); err == nil {
			t.Errorf("%s: Train succeeded, want error", tc.name)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	base := func() *Envelope {
		return &Envelope{
			Features: []string{"x", "y"},
			Lo:       []float64{0, 0},
			Hi:       []float64{1, 1},
			InvWidth: []float64{1, 1},
		}
	}
	cases := []struct {
		name string
		mut  func(*Envelope)
	}{
		{"no features", func(e *Envelope) { e.Features = nil }},
		{"width mismatch", func(e *Envelope) { e.Lo = e.Lo[:1] }},
		{"empty name", func(e *Envelope) { e.Features[0] = "" }},
		{"dup name", func(e *Envelope) { e.Features[1] = "x" }},
		{"nan bound", func(e *Envelope) { e.Lo[0] = math.NaN() }},
		{"inverted bounds", func(e *Envelope) { e.Lo[0] = 2 }},
		{"zero scale", func(e *Envelope) { e.InvWidth[0] = 0 }},
		{"negative threshold", func(e *Envelope) { e.Threshold = -1 }},
		{"bad budget", func(e *Envelope) { e.Budget = 1 }},
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base envelope invalid: %v", err)
	}
	var nilEnv *Envelope
	if err := nilEnv.Validate(); err == nil {
		t.Error("nil envelope validated")
	}
	for _, tc := range cases {
		e := base()
		tc.mut(e)
		if err := e.Validate(); err == nil {
			t.Errorf("%s: Validate succeeded, want error", tc.name)
		}
	}
}

// TestCompiledScoreAllocs enforces the 0 allocs/sample contract outside
// the benchgate too, so a regression fails plain `go test`.
func TestCompiledScoreAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	benign := synthBenign(rng, 200, 4)
	e, err := Train(names(4), benign, TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	c := e.Compile()
	fv := benign[0]
	var sink float64
	if allocs := testing.AllocsPerRun(1000, func() { sink = c.Score(fv) }); allocs != 0 {
		t.Fatalf("Compiled.Score allocates %v/op, want 0", allocs)
	}
	_ = sink
}

// BenchmarkAnomalyScore is wired into the CI benchgate (alloc delta
// enforced at 0/sample); it scores one 4-feature sample per iteration —
// the exact per-sample cost stage-0 adds to the serving hot path.
func BenchmarkAnomalyScore(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	benign := synthBenign(rng, 500, 4)
	e, err := Train(names(4), benign, TrainConfig{})
	if err != nil {
		b.Fatal(err)
	}
	c := e.Compile()
	fv := benign[0]
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = c.Score(fv)
	}
	_ = sink
}
