package hpc

import (
	"errors"
	"time"
)

// Processor is the minimal view of an executing core the sampler needs: it
// can run a bounded number of instructions (emitting events into whatever
// Sink it was constructed with) and report elapsed core cycles.
// internal/microarch.Core satisfies this interface.
type Processor interface {
	// Run executes up to maxInstrs instructions of the bound workload and
	// returns the number actually executed; 0 means the program finished.
	Run(maxInstrs int64) int64
	// CycleCount returns the total core cycles elapsed so far.
	CycleCount() uint64
}

// Sample is one sampling-period observation: the per-interval delta of every
// programmed counter register, in programming order, plus the deltas of the
// fixed-function counters (instructions, cycles, reference cycles) that are
// always available.
type Sample struct {
	Index  int
	Counts []uint64
	Fixed  [3]uint64 // deltas in FixedEvents order
}

// Sampler reads the programmed counter registers every Period of virtual
// time while the processor executes, reproducing the paper's 10 ms perf
// sampling. Virtual time is derived from core cycles at FreqHz.
type Sampler struct {
	Proc   Processor
	CF     *CounterFile
	FreqHz float64       // core frequency; the X5550 runs at 2.67 GHz
	Period time.Duration // sampling period; the paper uses 10 ms

	// ChunkInstrs bounds how many instructions run between boundary
	// checks. Smaller values give finer sample alignment at slightly
	// higher overhead. Defaults to 1024.
	ChunkInstrs int64
}

// DefaultFreqHz is the modelled core frequency (2.67 GHz, Xeon X5550).
const DefaultFreqHz = 2.67e9

// DefaultPeriod is the paper's perf sampling period.
const DefaultPeriod = 10 * time.Millisecond

// Collect runs the processor to completion (or until maxSamples samples have
// been taken, if maxSamples > 0), reading the counters at each period
// boundary. A trailing partial interval is discarded, matching periodic
// perf sampling. The software clock events (cpu-clock, task-clock) are
// advanced by the sampler, since they are OS timer based rather than
// microarchitectural.
func (s *Sampler) Collect(maxSamples int) ([]Sample, error) {
	if s.Proc == nil || s.CF == nil {
		return nil, errors.New("hpc: sampler requires a processor and a counter file")
	}
	freq := s.FreqHz
	if freq <= 0 {
		freq = DefaultFreqHz
	}
	period := s.Period
	if period <= 0 {
		period = DefaultPeriod
	}
	chunk := s.ChunkInstrs
	if chunk <= 0 {
		chunk = 1024
	}
	cyclesPerPeriod := uint64(freq * period.Seconds())
	if cyclesPerPeriod == 0 {
		return nil, errors.New("hpc: sampling period shorter than one cycle")
	}

	var samples []Sample
	prev := make([]uint64, len(s.CF.Programmed()))
	var prevFixed [3]uint64
	boundary := s.Proc.CycleCount() + cyclesPerPeriod
	for {
		ran := s.Proc.Run(chunk)
		if ran == 0 {
			// Program finished; drop the partial tail interval.
			return samples, nil
		}
		for s.Proc.CycleCount() >= boundary {
			s.tickClocks(period)
			cur := s.CF.ReadAll()
			counts := make([]uint64, len(cur))
			for i := range cur {
				counts[i] = cur[i] - prev[i]
				prev[i] = cur[i]
			}
			curFixed := s.CF.ReadFixed()
			var fixed [3]uint64
			for i := range curFixed {
				fixed[i] = curFixed[i] - prevFixed[i]
				prevFixed[i] = curFixed[i]
			}
			samples = append(samples, Sample{Index: len(samples), Counts: counts, Fixed: fixed})
			// Coalesce missed ticks: when a burst of long-latency
			// instructions (e.g. a page-fault storm) spans several
			// periods, the next sample starts at the next boundary
			// after "now", as an OS timer interrupt would.
			for boundary <= s.Proc.CycleCount() {
				boundary += cyclesPerPeriod
			}
			if maxSamples > 0 && len(samples) >= maxSamples {
				return samples, nil
			}
		}
	}
}

// tickClocks advances the OS software-clock events by one period.
func (s *Sampler) tickClocks(period time.Duration) {
	ns := uint64(period.Nanoseconds())
	s.CF.Inc(EvCPUClock, ns)
	s.CF.Inc(EvTaskClock, ns)
}
