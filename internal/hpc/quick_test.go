package hpc

import (
	"testing"
	"testing/quick"
)

// Property: the counter file only ever exposes counts for programmed or
// fixed events, and counts are exactly the sum of Inc calls for them.
func TestQuickCounterFileAccounting(t *testing.T) {
	f := func(eventsRaw []uint8, incsRaw []uint16) bool {
		// Build a valid programming of at most 4 distinct non-fixed events.
		cf := NewCounterFile()
		var events []Event
		seen := map[Event]bool{}
		for _, raw := range eventsRaw {
			e := Event(raw) % Event(NumEvents)
			if seen[e] || isFixed(e) {
				continue
			}
			seen[e] = true
			events = append(events, e)
			if len(events) == MaxProgrammable {
				break
			}
		}
		if err := cf.Program(events...); err != nil {
			return false
		}
		want := map[Event]uint64{}
		for _, raw := range incsRaw {
			e := Event(raw) % Event(NumEvents)
			n := uint64(raw%7) + 1
			cf.Inc(e, n)
			want[e] += n
		}
		// Programmed and fixed events read back their exact sums.
		for _, e := range events {
			if v, ok := cf.Read(e); !ok || v != want[e] {
				return false
			}
		}
		for _, e := range FixedEvents {
			if v, ok := cf.Read(e); !ok || v != want[e] {
				return false
			}
		}
		// Everything else is invisible.
		for e := 0; e < NumEvents; e++ {
			ev := Event(e)
			if seen[ev] || isFixed(ev) {
				continue
			}
			if _, ok := cf.Read(ev); ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func isFixed(e Event) bool {
	for _, f := range FixedEvents {
		if f == e {
			return true
		}
	}
	return false
}

// Property: every multiplex schedule partitions its input exactly.
func TestQuickMultiplexPartition(t *testing.T) {
	f := func(raw []uint8) bool {
		seen := map[Event]bool{}
		var events []Event
		for _, r := range raw {
			e := Event(r) % Event(NumEvents)
			if !seen[e] {
				seen[e] = true
				events = append(events, e)
			}
		}
		groups := MultiplexSchedule(events)
		covered := map[Event]int{}
		for _, g := range groups {
			if len(g) == 0 || len(g) > MaxProgrammable {
				return false
			}
			for _, e := range g {
				covered[e]++
			}
		}
		if len(covered) != len(events) {
			return false
		}
		for _, n := range covered {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
