package hpc

import (
	"fmt"
	"strings"
)

// Accumulator is a Sink that counts every event with no register limit — a
// simulator-only omniscient observer used by the fast collection path, by
// tooling that reports microarchitectural statistics, and by tests. Real
// hardware cannot do this; that is the paper's point, and the reason the
// CounterFile exists.
type Accumulator struct {
	counts [NumEvents]uint64
}

// Inc implements Sink.
func (a *Accumulator) Inc(e Event, n uint64) {
	if int(e) < NumEvents {
		a.counts[e] += n
	}
}

// Count returns the accumulated count of e.
func (a *Accumulator) Count(e Event) uint64 {
	if int(e) >= NumEvents {
		return 0
	}
	return a.counts[e]
}

// Snapshot returns a copy of all counts in canonical event order.
func (a *Accumulator) Snapshot() [NumEvents]uint64 { return a.counts }

// Reset zeroes every count.
func (a *Accumulator) Reset() { a.counts = [NumEvents]uint64{} }

// IPC returns retired instructions per cycle (0 when no cycles elapsed).
func (a *Accumulator) IPC() float64 {
	cycles := a.counts[EvCycles]
	if cycles == 0 {
		return 0
	}
	return float64(a.counts[EvInstrs]) / float64(cycles)
}

// Ratio returns counts[num]/counts[den], or 0 when the denominator is zero.
// Use it for miss ratios, e.g. Ratio(EvL1DLoadMiss, EvL1DLoads).
func (a *Accumulator) Ratio(num, den Event) float64 {
	d := a.Count(den)
	if d == 0 {
		return 0
	}
	return float64(a.Count(num)) / float64(d)
}

// PerKiloInstr returns the rate of e per thousand retired instructions.
func (a *Accumulator) PerKiloInstr(e Event) float64 {
	instr := a.counts[EvInstrs]
	if instr == 0 {
		return 0
	}
	return 1000 * float64(a.Count(e)) / float64(instr)
}

// Summary renders the headline microarchitectural statistics.
func (a *Accumulator) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "instructions: %d  cycles: %d  IPC: %.3f\n",
		a.counts[EvInstrs], a.counts[EvCycles], a.IPC())
	fmt.Fprintf(&b, "L1D load miss ratio:  %.3f  (%d/%d)\n",
		a.Ratio(EvL1DLoadMiss, EvL1DLoads), a.Count(EvL1DLoadMiss), a.Count(EvL1DLoads))
	fmt.Fprintf(&b, "L1I load miss ratio:  %.3f  (%d/%d)\n",
		a.Ratio(EvL1ILoadMiss, EvL1ILoads), a.Count(EvL1ILoadMiss), a.Count(EvL1ILoads))
	fmt.Fprintf(&b, "LLC miss ratio:       %.3f  (%d/%d refs)\n",
		a.Ratio(EvCacheMiss, EvCacheRef), a.Count(EvCacheMiss), a.Count(EvCacheRef))
	fmt.Fprintf(&b, "branch mispredict:    %.3f  (%d/%d)\n",
		a.Ratio(EvBranchMiss, EvBranchInstr), a.Count(EvBranchMiss), a.Count(EvBranchInstr))
	fmt.Fprintf(&b, "dTLB load miss ratio: %.3f   iTLB load miss ratio: %.3f\n",
		a.Ratio(EvDTLBLoadMiss, EvDTLBLoads), a.Ratio(EvITLBLoadMiss, EvITLBLoads))
	fmt.Fprintf(&b, "page faults: %d (minor %d / major %d)  ctx switches: %d\n",
		a.Count(EvPageFaults), a.Count(EvMinorFault), a.Count(EvMajorFault), a.Count(EvCtxSwitch))
	return b.String()
}
