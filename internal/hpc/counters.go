package hpc

import (
	"fmt"
	"sort"
)

// MaxProgrammable is the number of programmable counter registers on the
// modelled processor. The Intel Xeon X5550 the paper profiles on exposes
// four general-purpose counters, which is the central constraint 2SMaRT is
// designed around: only four events can be captured in a single run.
const MaxProgrammable = 4

// FixedEvents are the events counted by the PMU's fixed-function counters,
// which Intel cores provide in addition to the programmable registers:
// retired instructions, core cycles and reference cycles are always
// available without consuming a programmable slot. Run-time detectors rely
// on this to normalise event counts per retired instruction.
var FixedEvents = [3]Event{EvInstrs, EvCycles, EvRefCycles}

// CounterFile models the processor's performance-counter register file: a
// fixed set of programmable registers, each bound to at most one event,
// plus the three fixed-function counters that always count. Events that
// are neither fixed nor bound to a register are physically invisible — Inc
// calls for them are dropped, exactly as real hardware cannot count an
// unprogrammed event.
type CounterFile struct {
	enabled [NumEvents]bool
	counts  [NumEvents]uint64
	bound   []Event
}

// NewCounterFile returns a counter file with no programmable events bound;
// the fixed-function counters are always active.
func NewCounterFile() *CounterFile {
	cf := &CounterFile{}
	for _, e := range FixedEvents {
		cf.enabled[e] = true
	}
	return cf
}

// Program binds the given events to the programmable registers, replacing
// any previous programming and clearing all counts. Fixed-function events
// need not (and do not) consume programmable slots; requesting one here is
// allowed but counts against the register budget like real perf tooling
// falling back to a generic counter. It returns an error if more than
// MaxProgrammable events are requested or an event is duplicated.
func (cf *CounterFile) Program(events ...Event) error {
	if len(events) > MaxProgrammable {
		return fmt.Errorf("hpc: cannot program %d events; only %d counter registers available", len(events), MaxProgrammable)
	}
	seen := map[Event]bool{}
	for _, e := range events {
		if int(e) >= NumEvents {
			return fmt.Errorf("hpc: unknown event %d", e)
		}
		if seen[e] {
			return fmt.Errorf("hpc: event %v programmed twice", e)
		}
		seen[e] = true
	}
	*cf = CounterFile{}
	for _, e := range events {
		cf.enabled[e] = true
	}
	for _, e := range FixedEvents {
		cf.enabled[e] = true
	}
	cf.bound = append([]Event(nil), events...)
	return nil
}

// Programmed returns the events currently bound to registers, in programming
// order.
func (cf *CounterFile) Programmed() []Event {
	return append([]Event(nil), cf.bound...)
}

// Inc implements Sink. Occurrences of unprogrammed events are dropped.
func (cf *CounterFile) Inc(e Event, n uint64) {
	if cf.enabled[e] {
		cf.counts[e] += n
	}
}

// Read returns the current count of e and whether e is programmed. Reading
// an unprogrammed event returns (0, false).
func (cf *CounterFile) Read(e Event) (uint64, bool) {
	if !cf.enabled[e] {
		return 0, false
	}
	return cf.counts[e], true
}

// ReadAll returns the counts of all programmed events in programming order.
func (cf *CounterFile) ReadAll() []uint64 {
	out := make([]uint64, len(cf.bound))
	for i, e := range cf.bound {
		out[i] = cf.counts[e]
	}
	return out
}

// ReadFixed returns the fixed-function counter values in FixedEvents order
// (instructions, cycles, reference cycles).
func (cf *CounterFile) ReadFixed() [3]uint64 {
	var out [3]uint64
	for i, e := range FixedEvents {
		out[i] = cf.counts[e]
	}
	return out
}

// Zero clears all counts without changing the programming.
func (cf *CounterFile) Zero() {
	cf.counts = [NumEvents]uint64{}
}

// Group is a set of events scheduled together on the counter registers.
type Group []Event

// MultiplexSchedule partitions events into groups of at most
// MaxProgrammable events each, in canonical event order. For the full
// 44-event set this yields the paper's 11 batches of 4 events, each batch
// requiring its own run of the application.
func MultiplexSchedule(events []Event) []Group {
	sorted := append([]Event(nil), events...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var groups []Group
	for len(sorted) > 0 {
		n := MaxProgrammable
		if len(sorted) < n {
			n = len(sorted)
		}
		groups = append(groups, Group(append([]Event(nil), sorted[:n]...)))
		sorted = sorted[n:]
	}
	return groups
}
