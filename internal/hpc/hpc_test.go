package hpc

import (
	"strings"
	"testing"
	"time"
)

func TestEventNamesUniqueAndComplete(t *testing.T) {
	if NumEvents != 44 {
		t.Fatalf("NumEvents=%d, want 44 (the paper's event count)", NumEvents)
	}
	seen := map[string]bool{}
	for _, e := range AllEvents() {
		name := e.String()
		if name == "" {
			t.Fatalf("event %d has empty name", e)
		}
		if seen[name] {
			t.Fatalf("duplicate event name %q", name)
		}
		seen[name] = true
	}
}

func TestEventByName(t *testing.T) {
	e, ok := EventByName("branch-instructions")
	if !ok || e != EvBranchInstr {
		t.Fatalf("EventByName(branch-instructions)=(%v,%v)", e, ok)
	}
	if _, ok := EventByName("nonsense"); ok {
		t.Fatal("unknown name resolved")
	}
}

func TestEventStringUnknown(t *testing.T) {
	if got := Event(200).String(); got != "event(200)" {
		t.Fatalf("unknown event string=%q", got)
	}
}

func TestCounterFileEnforcesFourRegisters(t *testing.T) {
	cf := NewCounterFile()
	err := cf.Program(EvCycles, EvInstrs, EvCacheRef, EvCacheMiss, EvBranchInstr)
	if err == nil {
		t.Fatal("programmed five events onto four registers")
	}
	if err := cf.Program(EvCycles, EvInstrs, EvCacheRef, EvCacheMiss); err != nil {
		t.Fatal(err)
	}
}

func TestCounterFileRejectsDuplicatesAndUnknown(t *testing.T) {
	cf := NewCounterFile()
	if err := cf.Program(EvCycles, EvCycles); err == nil {
		t.Fatal("duplicate event accepted")
	}
	if err := cf.Program(Event(99)); err == nil {
		t.Fatal("unknown event accepted")
	}
}

func TestCounterFileDropsUnprogrammedEvents(t *testing.T) {
	cf := NewCounterFile()
	if err := cf.Program(EvBranchInstr); err != nil {
		t.Fatal(err)
	}
	cf.Inc(EvBranchInstr, 10)
	cf.Inc(EvCacheRef, 999) // not programmed, not fixed: invisible
	if v, ok := cf.Read(EvBranchInstr); !ok || v != 10 {
		t.Fatalf("Read(branches)=(%d,%v), want (10,true)", v, ok)
	}
	if _, ok := cf.Read(EvCacheRef); ok {
		t.Fatal("read an unprogrammed counter")
	}
}

func TestFixedFunctionCounters(t *testing.T) {
	cf := NewCounterFile()
	// Fixed counters count even with nothing programmed.
	cf.Inc(EvInstrs, 5)
	cf.Inc(EvCycles, 9)
	if v, ok := cf.Read(EvInstrs); !ok || v != 5 {
		t.Fatalf("fixed instructions=(%d,%v)", v, ok)
	}
	fixed := cf.ReadFixed()
	if fixed[0] != 5 || fixed[1] != 9 || fixed[2] != 0 {
		t.Fatalf("ReadFixed=%v", fixed)
	}
	// Programming four other events leaves the fixed counters active and
	// does not consume registers for them.
	if err := cf.Program(EvCacheRef, EvCacheMiss, EvBranchInstr, EvBranchMiss); err != nil {
		t.Fatal(err)
	}
	cf.Inc(EvInstrs, 3)
	if v, _ := cf.Read(EvInstrs); v != 3 {
		t.Fatalf("fixed counter after reprogram=%d, want 3", v)
	}
	if len(cf.Programmed()) != 4 {
		t.Fatal("fixed events leaked into programming")
	}
}

func TestCounterFileReprogramClears(t *testing.T) {
	cf := NewCounterFile()
	cf.Program(EvInstrs)
	cf.Inc(EvInstrs, 5)
	cf.Program(EvInstrs, EvCycles)
	if v, _ := cf.Read(EvInstrs); v != 0 {
		t.Fatalf("reprogramming kept stale count %d", v)
	}
}

func TestCounterFileReadAllOrder(t *testing.T) {
	cf := NewCounterFile()
	cf.Program(EvBranchInstr, EvCacheRef)
	cf.Inc(EvBranchInstr, 3)
	cf.Inc(EvCacheRef, 7)
	got := cf.ReadAll()
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("ReadAll=%v, want [3 7] in programming order", got)
	}
	prog := cf.Programmed()
	if len(prog) != 2 || prog[0] != EvBranchInstr || prog[1] != EvCacheRef {
		t.Fatalf("Programmed=%v", prog)
	}
}

func TestCounterFileZero(t *testing.T) {
	cf := NewCounterFile()
	cf.Program(EvInstrs)
	cf.Inc(EvInstrs, 5)
	cf.Zero()
	if v, _ := cf.Read(EvInstrs); v != 0 {
		t.Fatalf("Zero left count %d", v)
	}
	if len(cf.Programmed()) != 1 {
		t.Fatal("Zero changed programming")
	}
}

func TestMultiplexScheduleElevenBatches(t *testing.T) {
	groups := MultiplexSchedule(AllEvents())
	if len(groups) != 11 {
		t.Fatalf("full schedule has %d groups, want 11 (paper: 11 batches of 4)", len(groups))
	}
	seen := map[Event]bool{}
	for _, g := range groups {
		if len(g) > MaxProgrammable {
			t.Fatalf("group of %d events exceeds %d registers", len(g), MaxProgrammable)
		}
		for _, e := range g {
			if seen[e] {
				t.Fatalf("event %v scheduled twice", e)
			}
			seen[e] = true
		}
	}
	if len(seen) != NumEvents {
		t.Fatalf("schedule covers %d events, want %d", len(seen), NumEvents)
	}
}

func TestMultiplexSchedulePartialGroup(t *testing.T) {
	groups := MultiplexSchedule([]Event{EvCycles, EvInstrs, EvCacheRef, EvCacheMiss, EvBranchInstr})
	if len(groups) != 2 || len(groups[0]) != 4 || len(groups[1]) != 1 {
		t.Fatalf("unexpected schedule %v", groups)
	}
}

// fakeProc runs a fixed number of instructions, advancing a fixed number of
// cycles per instruction and emitting one instructions-event each.
type fakeProc struct {
	remaining int64
	cpi       uint64
	cycles    uint64
	sink      Sink
}

func (p *fakeProc) Run(maxInstrs int64) int64 {
	n := maxInstrs
	if p.remaining < n {
		n = p.remaining
	}
	p.remaining -= n
	p.cycles += uint64(n) * p.cpi
	p.sink.Inc(EvInstrs, uint64(n))
	return n
}

func (p *fakeProc) CycleCount() uint64 { return p.cycles }

func TestSamplerPeriodBoundaries(t *testing.T) {
	cf := NewCounterFile()
	if err := cf.Program(EvInstrs); err != nil {
		t.Fatal(err)
	}
	// 1000 cycles per period at freq 1e5 Hz and 10ms period.
	proc := &fakeProc{remaining: 10000, cpi: 1, sink: cf}
	s := &Sampler{Proc: proc, CF: cf, FreqHz: 1e5, Period: 10 * time.Millisecond, ChunkInstrs: 100}
	samples, err := s.Collect(0)
	if err != nil {
		t.Fatal(err)
	}
	// 10000 instructions at 1 CPI = 10000 cycles = 10 periods of 1000.
	if len(samples) != 10 {
		t.Fatalf("got %d samples, want 10", len(samples))
	}
	var total uint64
	for i, smp := range samples {
		if smp.Index != i {
			t.Fatalf("sample %d has index %d", i, smp.Index)
		}
		if len(smp.Counts) != 1 {
			t.Fatalf("sample has %d counts, want 1", len(smp.Counts))
		}
		total += smp.Counts[0]
	}
	if total != 10000 {
		t.Fatalf("samples sum to %d instructions, want 10000", total)
	}
}

func TestSamplerMaxSamples(t *testing.T) {
	cf := NewCounterFile()
	cf.Program(EvInstrs)
	proc := &fakeProc{remaining: 100000, cpi: 1, sink: cf}
	s := &Sampler{Proc: proc, CF: cf, FreqHz: 1e5, Period: 10 * time.Millisecond}
	samples, err := s.Collect(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("got %d samples, want 3", len(samples))
	}
}

func TestSamplerDropsPartialTail(t *testing.T) {
	cf := NewCounterFile()
	cf.Program(EvInstrs)
	// 1500 cycles: one full 1000-cycle period plus a 500-cycle tail.
	proc := &fakeProc{remaining: 1500, cpi: 1, sink: cf}
	s := &Sampler{Proc: proc, CF: cf, FreqHz: 1e5, Period: 10 * time.Millisecond, ChunkInstrs: 10}
	samples, err := s.Collect(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 {
		t.Fatalf("got %d samples, want 1 (partial tail dropped)", len(samples))
	}
}

func TestSamplerClockEvents(t *testing.T) {
	cf := NewCounterFile()
	cf.Program(EvTaskClock, EvInstrs)
	proc := &fakeProc{remaining: 5000, cpi: 1, sink: cf}
	s := &Sampler{Proc: proc, CF: cf, FreqHz: 1e5, Period: 10 * time.Millisecond}
	samples, err := s.Collect(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	for _, smp := range samples {
		if smp.Counts[0] != uint64(10*time.Millisecond.Nanoseconds())*1e6/1e6 {
			// task-clock advances by the period in nanoseconds
			if smp.Counts[0] != 1e7 {
				t.Fatalf("task-clock delta=%d, want 1e7 ns", smp.Counts[0])
			}
		}
	}
}

func TestSamplerRequiresProcAndCF(t *testing.T) {
	s := &Sampler{}
	if _, err := s.Collect(0); err == nil {
		t.Fatal("sampler without processor accepted")
	}
}

func TestSinkFuncAndNullSink(t *testing.T) {
	var got Event
	var n uint64
	SinkFunc(func(e Event, k uint64) { got, n = e, k }).Inc(EvCycles, 4)
	if got != EvCycles || n != 4 {
		t.Fatal("SinkFunc did not forward")
	}
	NullSink{}.Inc(EvCycles, 1) // must not panic
}

func TestAccumulator(t *testing.T) {
	var a Accumulator
	a.Inc(EvInstrs, 1000)
	a.Inc(EvCycles, 2000)
	a.Inc(EvL1DLoads, 100)
	a.Inc(EvL1DLoadMiss, 25)
	a.Inc(EvBranchInstr, 200)
	a.Inc(EvBranchMiss, 10)
	a.Inc(Event(250), 5) // out of range: ignored

	if a.Count(EvInstrs) != 1000 || a.Count(Event(250)) != 0 {
		t.Fatal("counts wrong")
	}
	if ipc := a.IPC(); ipc != 0.5 {
		t.Fatalf("IPC=%v, want 0.5", ipc)
	}
	if r := a.Ratio(EvL1DLoadMiss, EvL1DLoads); r != 0.25 {
		t.Fatalf("miss ratio=%v, want 0.25", r)
	}
	if r := a.Ratio(EvL1DLoadMiss, EvLLCStores); r != 0 {
		t.Fatal("zero denominator must give 0")
	}
	if pk := a.PerKiloInstr(EvBranchInstr); pk != 200 {
		t.Fatalf("per-kiloinstr=%v, want 200", pk)
	}
	snap := a.Snapshot()
	if snap[EvInstrs] != 1000 {
		t.Fatal("snapshot wrong")
	}
	s := a.Summary()
	for _, want := range []string{"IPC: 0.500", "branch mispredict", "page faults"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
	a.Reset()
	if a.Count(EvInstrs) != 0 || a.IPC() != 0 {
		t.Fatal("reset incomplete")
	}
	var empty Accumulator
	if empty.PerKiloInstr(EvCycles) != 0 {
		t.Fatal("empty accumulator rates must be 0")
	}
}
