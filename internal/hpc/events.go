// Package hpc models the hardware-performance-counter subsystem of the
// simulated processor: the 44 perf-style events the paper collects, a
// counter file with exactly four programmable registers (the Intel Xeon
// X5550 constraint the paper is built around), an event-group multiplexer
// that schedules the 44 events into 11 batches of 4, and a sampler that
// reads the enabled counters every 10 ms of virtual time.
package hpc

import "fmt"

// Event identifies one of the 44 microarchitectural/OS events available
// under the simulated perf interface.
type Event uint8

// The 44 events, mirroring Linux perf's generalized hardware, software and
// cache events on the paper's Xeon X5550 platform. Names follow perf-list
// conventions; the short aliases used in the paper's Table II are noted.
const (
	// Hardware events.
	EvCycles      Event = iota // cpu-cycles
	EvInstrs                   // instructions
	EvCacheRef                 // cache-references ("cache-ref")
	EvCacheMiss                // cache-misses ("cache-miss")
	EvBranchInstr              // branch-instructions ("branch-inst")
	EvBranchMiss               // branch-misses ("branch-miss")
	EvRefCycles                // ref-cycles
	EvStallFront               // stalled-cycles-frontend
	EvStallBack                // stalled-cycles-backend

	// Software events.
	EvCPUClock   // cpu-clock
	EvTaskClock  // task-clock
	EvPageFaults // page-faults
	EvCtxSwitch  // context-switches
	EvMigrations // cpu-migrations
	EvMinorFault // minor-faults
	EvMajorFault // major-faults

	// Cache events.
	EvL1DLoads        // L1-dcache-loads ("L1-dcache-lds")
	EvL1DLoadMiss     // L1-dcache-load-misses
	EvL1DStores       // L1-dcache-stores ("L1-dcache-st")
	EvL1DStoreMiss    // L1-dcache-store-misses
	EvL1DPrefetch     // L1-dcache-prefetches
	EvL1DPrefetchMiss // L1-dcache-prefetch-misses
	EvL1ILoads        // L1-icache-loads
	EvL1ILoadMiss     // L1-icache-load-misses ("L1-icache-ld-miss")
	EvLLCLoads        // LLC-loads ("LLC-lds")
	EvLLCLoadMiss     // LLC-load-misses ("LLC-ld-miss")
	EvLLCStores       // LLC-stores
	EvLLCStoreMiss    // LLC-store-misses
	EvLLCPrefetch     // LLC-prefetches
	EvLLCPrefetchMiss // LLC-prefetch-misses
	EvDTLBLoads       // dTLB-loads
	EvDTLBLoadMiss    // dTLB-load-misses
	EvDTLBStores      // dTLB-stores
	EvDTLBStoreMiss   // dTLB-store-misses
	EvITLBLoads       // iTLB-loads
	EvITLBLoadMiss    // iTLB-load-misses ("iTLB-ld-miss")
	EvBranchLoads     // branch-loads ("branch-lds"): branch-unit (BTB) reads
	EvBranchLoadMiss  // branch-load-misses: BTB misses
	EvNodeLoads       // node-loads
	EvNodeLoadMiss    // node-load-misses
	EvNodeStores      // node-stores ("node-st")
	EvNodeStoreMiss   // node-store-misses
	EvNodePrefetch    // node-prefetches
	EvNodePrefetchMiss

	// NumEvents is the number of distinct events (44, as in the paper).
	NumEvents = int(EvNodePrefetchMiss) + 1
)

var eventNames = [NumEvents]string{
	EvCycles:           "cpu-cycles",
	EvInstrs:           "instructions",
	EvCacheRef:         "cache-references",
	EvCacheMiss:        "cache-misses",
	EvBranchInstr:      "branch-instructions",
	EvBranchMiss:       "branch-misses",
	EvRefCycles:        "ref-cycles",
	EvStallFront:       "stalled-cycles-frontend",
	EvStallBack:        "stalled-cycles-backend",
	EvCPUClock:         "cpu-clock",
	EvTaskClock:        "task-clock",
	EvPageFaults:       "page-faults",
	EvCtxSwitch:        "context-switches",
	EvMigrations:       "cpu-migrations",
	EvMinorFault:       "minor-faults",
	EvMajorFault:       "major-faults",
	EvL1DLoads:         "L1-dcache-loads",
	EvL1DLoadMiss:      "L1-dcache-load-misses",
	EvL1DStores:        "L1-dcache-stores",
	EvL1DStoreMiss:     "L1-dcache-store-misses",
	EvL1DPrefetch:      "L1-dcache-prefetches",
	EvL1DPrefetchMiss:  "L1-dcache-prefetch-misses",
	EvL1ILoads:         "L1-icache-loads",
	EvL1ILoadMiss:      "L1-icache-load-misses",
	EvLLCLoads:         "LLC-loads",
	EvLLCLoadMiss:      "LLC-load-misses",
	EvLLCStores:        "LLC-stores",
	EvLLCStoreMiss:     "LLC-store-misses",
	EvLLCPrefetch:      "LLC-prefetches",
	EvLLCPrefetchMiss:  "LLC-prefetch-misses",
	EvDTLBLoads:        "dTLB-loads",
	EvDTLBLoadMiss:     "dTLB-load-misses",
	EvDTLBStores:       "dTLB-stores",
	EvDTLBStoreMiss:    "dTLB-store-misses",
	EvITLBLoads:        "iTLB-loads",
	EvITLBLoadMiss:     "iTLB-load-misses",
	EvBranchLoads:      "branch-loads",
	EvBranchLoadMiss:   "branch-load-misses",
	EvNodeLoads:        "node-loads",
	EvNodeLoadMiss:     "node-load-misses",
	EvNodeStores:       "node-stores",
	EvNodeStoreMiss:    "node-store-misses",
	EvNodePrefetch:     "node-prefetches",
	EvNodePrefetchMiss: "node-prefetch-misses",
}

// String returns the perf-style name of e.
func (e Event) String() string {
	if int(e) < NumEvents {
		return eventNames[e]
	}
	return fmt.Sprintf("event(%d)", uint8(e))
}

// AllEvents returns the 44 events in canonical order.
func AllEvents() []Event {
	out := make([]Event, NumEvents)
	for i := range out {
		out[i] = Event(i)
	}
	return out
}

// EventByName returns the event with the given perf-style name.
func EventByName(name string) (Event, bool) {
	for i, n := range eventNames {
		if n == name {
			return Event(i), true
		}
	}
	return 0, false
}

// Sink receives event occurrences from the microarchitectural models. The
// counter file implements Sink; tests may supply their own.
type Sink interface {
	// Inc records n occurrences of event e.
	Inc(e Event, n uint64)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(e Event, n uint64)

// Inc implements Sink.
func (f SinkFunc) Inc(e Event, n uint64) { f(e, n) }

// NullSink discards all events.
type NullSink struct{}

// Inc implements Sink.
func (NullSink) Inc(Event, uint64) {}
