package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
)

// every frame type with representative field values, including the edge
// floats whose bit patterns must survive the trip.
func sampleFrames() []Frame {
	return []Frame{
		Hello{Proto: ProtoVersion, Agent: "smartload/1"},
		Hello{},
		Welcome{Proto: ProtoVersion, ModelFormat: 1, ModelVersion: 3, NumFeatures: 4, Model: "runtime-common4"},
		OpenStream{Stream: 7, App: "backdoor-3#2"},
		Sample{Stream: 7, Seq: 42, Features: []float64{1.5, -0.25, 0, 1e-9}},
		Sample{Stream: 1, Seq: 0, Features: []float64{}},
		Sample{Stream: 2, Seq: 1, IngressNanos: 1754500000123456789, Features: []float64{math.Inf(1), math.Inf(-1), math.MaxFloat64}},
		Verdict{Stream: 7, Seq: 42, Flags: FlagMalware | FlagAlarm, Class: 3, Score: 0.93, Smoothed: 0.71},
		CloseStream{Stream: 7},
		StreamSummary{Stream: 7, ModelVersion: 2, Samples: 1 << 40, Shed: 12, Alarms: 3, MaxSmoothed: 0.99},
		Heartbeat{Nanos: 1234567890},
		Error{Code: CodeBadFeatures, Msg: "sample has 3 features, want 4"},
	}
}

func TestRoundTrip(t *testing.T) {
	for _, f := range sampleFrames() {
		buf, err := Append(nil, f)
		if err != nil {
			t.Fatalf("Append(%#v): %v", f, err)
		}
		got, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("Decode(%#v): %v", f, err)
		}
		if n != len(buf) {
			t.Errorf("Decode(%#v) consumed %d of %d bytes", f, n, len(buf))
		}
		want := f
		// An empty feature slice decodes to nil; normalize for comparison.
		if s, ok := want.(Sample); ok && len(s.Features) == 0 {
			s.Features = nil
			want = s
			if g := got.(Sample); len(g.Features) == 0 {
				g.Features = nil
				got = g
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip mismatch:\n got %#v\nwant %#v", got, want)
		}
	}
}

func TestRoundTripNaN(t *testing.T) {
	buf, err := Append(nil, Sample{Stream: 1, Seq: 2, Features: []float64{math.NaN()}})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if fs := got.(Sample).Features; len(fs) != 1 || !math.IsNaN(fs[0]) {
		t.Errorf("NaN did not survive the round trip: %v", fs)
	}
}

func TestDecodeIncomplete(t *testing.T) {
	full, err := Append(nil, Verdict{Stream: 1, Seq: 2, Score: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := Decode(full[:cut]); !errors.Is(err, ErrIncomplete) {
			t.Errorf("Decode of %d/%d bytes: err=%v, want ErrIncomplete", cut, len(full), err)
		}
	}
}

func TestDecodeMultipleFrames(t *testing.T) {
	var buf []byte
	var err error
	frames := sampleFrames()
	for _, f := range frames {
		if buf, err = Append(buf, f); err != nil {
			t.Fatal(err)
		}
	}
	decoded := 0
	for len(buf) > 0 {
		f, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("frame %d: %v", decoded, err)
		}
		if f.Type() != frames[decoded].Type() {
			t.Fatalf("frame %d decoded as type 0x%02x, want 0x%02x", decoded, f.Type(), frames[decoded].Type())
		}
		buf = buf[n:]
		decoded++
	}
	if decoded != len(frames) {
		t.Errorf("decoded %d frames, want %d", decoded, len(frames))
	}
}

func TestDecodeRejects(t *testing.T) {
	cases := []struct {
		name string
		buf  []byte
	}{
		{"zero length", []byte{0, 0, 0, 0}},
		{"over max payload", []byte{0xff, 0xff, 0xff, 0xff}},
		{"unknown type", []byte{0, 0, 0, 1, 0x7f}},
		{"truncated hello", []byte{0, 0, 0, 2, TypeHello, 0}},
		{"trailing bytes", []byte{0, 0, 0, 6, TypeCloseStream, 0, 0, 0, 1, 0xee}},
		{"sample feature count lies", []byte{0, 0, 0, 19, TypeSample, 0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 9}},
		{"string over max", append([]byte{0, 0, 0, 5, TypeHello, 0, 1, 0xff, 0xff}, make([]byte, 0)...)},
	}
	for _, tc := range cases {
		if _, _, err := Decode(tc.buf); err == nil || errors.Is(err, ErrIncomplete) {
			t.Errorf("%s: Decode err=%v, want a hard decode error", tc.name, err)
		}
	}
}

func TestAppendRejects(t *testing.T) {
	if _, err := Append(nil, Hello{Agent: strings.Repeat("x", MaxString+1)}); err == nil {
		t.Error("Append accepted an over-long string")
	}
	if _, err := Append(nil, Sample{Features: make([]float64, MaxFeatures+1)}); err == nil {
		t.Error("Append accepted an over-wide sample")
	}
	// A rejected frame must leave dst untouched.
	dst := []byte{1, 2, 3}
	out, err := Append(dst, Hello{Agent: strings.Repeat("x", MaxString+1)})
	if err == nil || len(out) != 3 {
		t.Errorf("failed Append left %d bytes, want the 3 original", len(out))
	}
}

func TestReaderWriter(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	frames := sampleFrames()
	for _, f := range frames {
		if err := w.Write(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for i, want := range frames {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type() != want.Type() {
			t.Fatalf("frame %d: type 0x%02x, want 0x%02x", i, got.Type(), want.Type())
		}
		if s, ok := got.(Sample); ok {
			// The reader-owned features buffer aliases; copy before the
			// next call per the documented contract.
			ws := want.(Sample)
			if len(s.Features) != len(ws.Features) {
				t.Fatalf("frame %d: %d features, want %d", i, len(s.Features), len(ws.Features))
			}
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("after last frame: err=%v, want io.EOF", err)
	}
}

func TestReaderTruncatedStream(t *testing.T) {
	full, err := Append(nil, Heartbeat{Nanos: 99})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(full); cut++ {
		r := NewReader(bytes.NewReader(full[:cut]))
		if _, err := r.Next(); err != io.ErrUnexpectedEOF {
			t.Errorf("cut at %d: err=%v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

// BenchmarkWireSample measures the hot encode+decode path of one 4-feature
// sample frame, the unit of work the serving layer pays per streamed HPC
// sample on each side of the socket.
func BenchmarkWireSample(b *testing.B) {
	s := Sample{Stream: 3, Seq: 7, Features: []float64{1.25, 0.5, 3.75, 0.125}}
	buf, err := Append(nil, s)
	if err != nil {
		b.Fatal(err)
	}
	feats := make([]float64, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, _ = Append(buf[:0], s)
		f, err := DecodePayload(buf[4:], feats)
		if err != nil {
			b.Fatal(err)
		}
		feats = f.(Sample).Features
	}
}
