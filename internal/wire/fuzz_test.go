package wire

import (
	"bytes"
	"math"
	"testing"
)

// FuzzDecodeFrame pins the codec's safety and canonicality contracts
// against arbitrary network input:
//
//  1. Decode never panics, whatever the bytes (the server feeds it raw
//     socket data).
//  2. A frame that decodes successfully re-encodes to exactly the bytes
//     it was decoded from — the encoding is canonical, so there is no
//     mutant encoding a hostile client could use to smuggle divergent
//     interpretations past middleware.
//  3. Reader agrees with Decode on the same bytes.
func FuzzDecodeFrame(f *testing.F) {
	for _, fr := range []Frame{
		Hello{Proto: ProtoVersion, Agent: "fuzz"},
		Welcome{Proto: ProtoVersion, ModelFormat: 1, ModelVersion: 2, NumFeatures: 4, Model: "m"},
		OpenStream{Stream: 1, App: "app"},
		Sample{Stream: 1, Seq: 2, Features: []float64{0.5, -1, math.Inf(1), math.NaN()}},
		Verdict{Stream: 1, Seq: 2, Flags: FlagMalware, Class: 2, Score: 0.9, Smoothed: 0.8},
		CloseStream{Stream: 1},
		StreamSummary{Stream: 1, ModelVersion: 1, Samples: 100, Shed: 3, Alarms: 1, MaxSmoothed: 0.97},
		Heartbeat{Nanos: 42},
		Error{Code: CodeProtocol, Msg: "bad"},
	} {
		buf, err := Append(nil, fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		f.Add(buf[:len(buf)-1]) // truncated
	}
	f.Add([]byte{0, 0, 0, 1, 0x7f})          // unknown type
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0}) // absurd length

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := Decode(data)
		if err != nil {
			if fr != nil || n != 0 {
				t.Fatalf("failed Decode returned frame=%v n=%d", fr, n)
			}
			return
		}
		if n < 5 || n > len(data) {
			t.Fatalf("Decode consumed %d of %d bytes", n, len(data))
		}
		re, err := Append(nil, fr)
		if err != nil {
			t.Fatalf("re-encode of decoded frame %#v: %v", fr, err)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("non-canonical encoding:\n in  %x\n out %x", data[:n], re)
		}
		r := NewReader(bytes.NewReader(data))
		rf, rerr := r.Next()
		if rerr != nil {
			t.Fatalf("Decode accepted the prefix but Reader failed: %v", rerr)
		}
		if rf.Type() != fr.Type() {
			t.Fatalf("Reader decoded type 0x%02x, Decode 0x%02x", rf.Type(), fr.Type())
		}
	})
}

// FuzzDecodePayload drives the inner payload decoder directly so the fuzzer
// does not have to learn the length header to reach field parsing.
func FuzzDecodePayload(f *testing.F) {
	f.Add([]byte{TypeSample, 0, 0, 0, 1, 0, 0, 0, 2, 0, 1, 63, 240, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{TypeHello, 0, 1, 0, 0})
	f.Add([]byte{TypeError, 0, 1, 0, 3, 'b', 'a', 'd'})
	f.Fuzz(func(t *testing.T, body []byte) {
		fr, err := DecodePayload(body, nil)
		if err == nil && fr == nil {
			t.Fatal("nil frame with nil error")
		}
	})
}
