package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Reader decodes a frame stream from an io.Reader. It is not safe for
// concurrent use; a connection owns one Reader on its read side.
type Reader struct {
	br    *bufio.Reader
	body  []byte    // reused frame-body buffer
	feats []float64 // reused Sample feature buffer
}

// NewReader builds a buffered frame reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 64<<10)}
}

// Next reads and decodes the next frame.
//
// Aliasing contract: to keep the per-frame steady state allocation-free,
// the Features slice of a returned Sample aliases a buffer owned by the
// Reader and is only valid until the next call to Next — callers that
// retain samples (the server's ingress queue does) must copy. A clean
// end of stream returns io.EOF; a stream truncated mid-frame returns
// io.ErrUnexpectedEOF.
func (r *Reader) Next() (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	length := int(binary.BigEndian.Uint32(hdr[:]))
	if length < 1 {
		return nil, fmt.Errorf("wire: zero-length frame")
	}
	if length > MaxPayload {
		return nil, ErrFrameTooLarge
	}
	if cap(r.body) < length {
		r.body = make([]byte, length)
	}
	body := r.body[:length]
	if _, err := io.ReadFull(r.br, body); err != nil {
		if err == io.EOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	f, err := DecodePayload(body, r.feats)
	if err != nil {
		return nil, err
	}
	if s, ok := f.(Sample); ok {
		r.feats = s.Features[:cap(s.Features)]
	}
	return f, nil
}

// Buffered reports how many bytes are already read into the Reader's
// buffer and not yet consumed. A relay can use it to batch flushes: keep
// copying frames while more input is buffered, flush once it would block.
func (r *Reader) Buffered() int { return r.br.Buffered() }

// Writer encodes frames onto an io.Writer through a buffer, so a burst of
// small frames costs one syscall. It is not safe for concurrent use;
// callers that share a connection's write side serialize around it.
type Writer struct {
	bw      *bufio.Writer
	scratch []byte
}

// NewWriter builds a buffered frame writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 64<<10)}
}

// Write encodes one frame into the buffer. The frame reaches the wire on
// Flush or when the buffer fills.
func (w *Writer) Write(f Frame) error {
	b, err := Append(w.scratch[:0], f)
	if err != nil {
		return err
	}
	w.scratch = b[:0]
	_, err = w.bw.Write(b)
	return err
}

// Flush pushes all buffered frames to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }
