// Package wire defines the binary frame protocol spoken between the
// streaming detection server (internal/serve, cmd/smartserve) and its
// agents (cmd/smartload): a compact length-prefixed codec carrying the
// run-time HPC sample stream one direction and verdicts the other.
//
// Every frame is
//
//	uint32 length | uint8 type | payload
//
// with all integers big-endian, floats as IEEE-754 bits, and strings as a
// uint16 length prefix followed by UTF-8 bytes. The length field counts
// the type byte plus the payload, so a decoder can skip unknown input
// without understanding it. Payloads are strictly sized: trailing bytes
// after the last field are a decode error, which makes the encoding
// canonical (Append∘Decode is the identity on valid frames — the fuzz
// harness pins this).
//
// A session opens with a Hello/Welcome handshake that carries the
// protocol version and the server's model format version and feature
// width, so version skew fails fast with a typed error instead of a
// garbled stream. Decode never panics on malformed input
// (FuzzDecodeFrame); resource bounds are enforced before allocation
// (MaxPayload, MaxString, MaxFeatures).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ProtoVersion is the wire protocol generation. A server refuses a Hello
// with a different version; bump it on any incompatible frame change.
//
// History: v2 added ModelVersion to Welcome and StreamSummary so agents
// can tell which registry version scored their stream across a
// zero-downtime model swap. v3 added IngressNanos to Sample so the
// gateway tier can stamp its ingress wall clock onto forwarded samples,
// letting the shard attribute gateway→shard latency in end-to-end
// traces (internal/trace). v4 added ModelVersion to Heartbeat: the
// server fills it from its active model on echo, so the gateway's
// periodic liveness probes double as a live per-shard version feed —
// Welcome only reports the version at dial time, which goes stale the
// moment a hot swap lands (the canary rollout split depends on this).
const ProtoVersion = 4

// Codec resource bounds, enforced during decode before any allocation.
const (
	// MaxPayload bounds the type byte plus payload of one frame.
	MaxPayload = 1 << 20
	// MaxString bounds encoded strings (application and model names).
	MaxString = 1 << 10
	// MaxFeatures bounds the feature vector width of one sample frame.
	MaxFeatures = 1 << 12
)

// Frame type bytes.
const (
	TypeHello         = 0x01
	TypeWelcome       = 0x02
	TypeOpenStream    = 0x03
	TypeSample        = 0x04
	TypeVerdict       = 0x05
	TypeCloseStream   = 0x06
	TypeStreamSummary = 0x07
	TypeHeartbeat     = 0x08
	TypeError         = 0x09
)

// Verdict flag bits.
const (
	FlagMalware      = 1 << 0 // the sample classified as malware
	FlagAlarm        = 1 << 1 // the stream's smoothed alarm is raised
	FlagAlarmChanged = 1 << 2 // this sample raised or cleared the alarm
	FlagShortCircuit = 1 << 3 // stage-0 envelope short-circuited the sample as clear benign
)

// Error frame codes.
const (
	CodeProtocol    = 1 // malformed or out-of-order frame
	CodeVersion     = 2 // protocol version mismatch
	CodeBadStream   = 3 // unknown, duplicate or exhausted stream id
	CodeBadFeatures = 4 // sample width does not match the model
	CodeDraining    = 5 // server is shutting down
	CodeUnavailable = 6 // no healthy backend shard for the stream's route
	CodeIdle        = 7 // connection reaped after the server's idle timeout
)

// Decode errors.
var (
	// ErrIncomplete reports that the buffer ends mid-frame; the caller
	// should read more bytes and retry.
	ErrIncomplete = errors.New("wire: incomplete frame")
	// ErrFrameTooLarge reports a length header above MaxPayload.
	ErrFrameTooLarge = errors.New("wire: frame exceeds max payload")
)

// Frame is one decoded protocol frame: exactly one of the concrete frame
// structs in this package.
type Frame interface {
	// Type returns the frame's wire type byte.
	Type() byte
}

// Hello is the client's first frame.
type Hello struct {
	Proto uint16 // client's ProtoVersion
	Agent string // free-form client identification for server logs
}

// Welcome is the server's handshake reply, advertising what the loaded
// model expects so the agent can fail fast on skew.
type Welcome struct {
	Proto        uint16 // server's ProtoVersion
	ModelFormat  uint16 // persist.FormatVersion of the serving model
	ModelVersion uint32 // registry version of the active model, 0 outside a registry
	NumFeatures  uint16 // feature width every Sample frame must carry
	Model        string // display name of the loaded model
}

// OpenStream starts a per-application sample stream on this connection.
// Stream ids are client-assigned and scoped to the connection; App keys
// the per-stream monitor, so it must be unique within the connection.
type OpenStream struct {
	Stream uint32
	App    string
}

// Sample carries one HPC feature vector for an open stream. Seq is a
// client-assigned sequence number echoed in the matching Verdict, which
// lets the agent measure end-to-end latency and detect shed samples.
// IngressNanos, when nonzero, is the unix-nano wall clock at which an
// upstream tier (the gateway) first accepted this sample; the scoring
// shard uses it as the origin of sampled end-to-end trace records.
// Agents sending directly leave it zero.
type Sample struct {
	Stream       uint32
	Seq          uint32
	IngressNanos uint64
	Features     []float64
}

// Verdict is the server's classification of one sample: the raw malware
// score, the EWMA-smoothed score, the routed class, and the alarm state
// bits (FlagMalware, FlagAlarm, FlagAlarmChanged).
type Verdict struct {
	Stream   uint32
	Seq      uint32
	Flags    uint8
	Class    uint8
	Score    float64
	Smoothed float64
}

// CloseStream ends a stream; the server replies with a StreamSummary.
type CloseStream struct {
	Stream uint32
}

// StreamSummary is the server's account of a closed stream: samples
// actually scored, samples shed under overload (never scored, no Verdict
// was sent), alarm raise transitions, and the peak smoothed score.
// ModelVersion is the registry version of the detector that scored the
// stream — a stream opened before a hot swap keeps reporting the version
// it was opened with, so agents can attribute verdicts across a swap.
type StreamSummary struct {
	Stream       uint32
	ModelVersion uint32
	Samples      uint64
	Shed         uint64
	Alarms       uint32
	MaxSmoothed  float64
}

// Heartbeat is a liveness and RTT probe. The server echoes Nanos back
// verbatim (agents use the round-trip as a write-path drain barrier)
// and fills ModelVersion from its active model, so a probing gateway
// tracks each shard's serving version live across hot swaps instead of
// trusting the dial-time Welcome. Clients send it zero.
type Heartbeat struct {
	Nanos        uint64
	ModelVersion uint32
}

// Error reports a protocol-level failure (one of the Code constants).
// Fatal errors are followed by connection close.
type Error struct {
	Code uint16
	Msg  string
}

func (Hello) Type() byte         { return TypeHello }
func (Welcome) Type() byte       { return TypeWelcome }
func (OpenStream) Type() byte    { return TypeOpenStream }
func (Sample) Type() byte        { return TypeSample }
func (Verdict) Type() byte       { return TypeVerdict }
func (CloseStream) Type() byte   { return TypeCloseStream }
func (StreamSummary) Type() byte { return TypeStreamSummary }
func (Heartbeat) Type() byte     { return TypeHeartbeat }
func (Error) Type() byte         { return TypeError }

// --- encoding ---------------------------------------------------------------

func appendU16(dst []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(dst, v) }
func appendU32(dst []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(dst, v) }
func appendU64(dst []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(dst, v) }
func appendF64(dst []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
}

func appendString(dst []byte, s string) ([]byte, error) {
	if len(s) > MaxString {
		return dst, fmt.Errorf("wire: string of %d bytes exceeds max %d", len(s), MaxString)
	}
	dst = appendU16(dst, uint16(len(s)))
	return append(dst, s...), nil
}

// Append encodes one complete frame (header included) onto dst and
// returns the extended slice. The inverse of Decode.
func Append(dst []byte, f Frame) ([]byte, error) {
	// Reserve the length header; patch it once the payload is known.
	start := len(dst)
	dst = appendU32(dst, 0)
	dst = append(dst, f.Type())
	var err error
	switch fr := f.(type) {
	case Hello:
		dst = appendU16(dst, fr.Proto)
		dst, err = appendString(dst, fr.Agent)
	case Welcome:
		dst = appendU16(dst, fr.Proto)
		dst = appendU16(dst, fr.ModelFormat)
		dst = appendU32(dst, fr.ModelVersion)
		dst = appendU16(dst, fr.NumFeatures)
		dst, err = appendString(dst, fr.Model)
	case OpenStream:
		dst = appendU32(dst, fr.Stream)
		dst, err = appendString(dst, fr.App)
	case Sample:
		if len(fr.Features) > MaxFeatures {
			return dst[:start], fmt.Errorf("wire: sample with %d features exceeds max %d", len(fr.Features), MaxFeatures)
		}
		dst = appendU32(dst, fr.Stream)
		dst = appendU32(dst, fr.Seq)
		dst = appendU64(dst, fr.IngressNanos)
		dst = appendU16(dst, uint16(len(fr.Features)))
		for _, v := range fr.Features {
			dst = appendF64(dst, v)
		}
	case Verdict:
		dst = appendU32(dst, fr.Stream)
		dst = appendU32(dst, fr.Seq)
		dst = append(dst, fr.Flags, fr.Class)
		dst = appendF64(dst, fr.Score)
		dst = appendF64(dst, fr.Smoothed)
	case CloseStream:
		dst = appendU32(dst, fr.Stream)
	case StreamSummary:
		dst = appendU32(dst, fr.Stream)
		dst = appendU32(dst, fr.ModelVersion)
		dst = appendU64(dst, fr.Samples)
		dst = appendU64(dst, fr.Shed)
		dst = appendU32(dst, fr.Alarms)
		dst = appendF64(dst, fr.MaxSmoothed)
	case Heartbeat:
		dst = appendU64(dst, fr.Nanos)
		dst = appendU32(dst, fr.ModelVersion)
	case Error:
		dst = appendU16(dst, fr.Code)
		dst, err = appendString(dst, fr.Msg)
	default:
		return dst[:start], fmt.Errorf("wire: cannot encode frame type %T", f)
	}
	if err != nil {
		return dst[:start], err
	}
	length := len(dst) - start - 4
	binary.BigEndian.PutUint32(dst[start:], uint32(length))
	return dst, nil
}

// --- decoding ---------------------------------------------------------------

// reader is a bounds-checked cursor over one frame payload. Every take
// method fails (sticky err) instead of panicking, so malformed input can
// never index out of range.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.buf)-r.off < n {
		r.err = fmt.Errorf("wire: truncated payload (want %d more bytes, have %d)", n, len(r.buf)-r.off)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) str() string {
	n := int(r.u16())
	if n > MaxString {
		r.err = fmt.Errorf("wire: string of %d bytes exceeds max %d", n, MaxString)
		return ""
	}
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// finish enforces strict sizing: a payload with bytes left over is
// malformed, which keeps the encoding canonical.
func (r *reader) finish(f Frame) (Frame, error) {
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.buf) {
		return nil, fmt.Errorf("wire: %d trailing bytes after %T payload", len(r.buf)-r.off, f)
	}
	return f, nil
}

// DecodePayload decodes the body of one frame (the type byte plus
// payload, without the length header). feats, when non-nil and wide
// enough, backs the Features slice of a Sample frame so a streaming
// reader can amortise the allocation; the returned slice then aliases it.
func DecodePayload(body []byte, feats []float64) (Frame, error) {
	if len(body) == 0 {
		return nil, errors.New("wire: empty frame body")
	}
	r := &reader{buf: body, off: 1}
	switch body[0] {
	case TypeHello:
		f := Hello{Proto: r.u16(), Agent: r.str()}
		return r.finish(f)
	case TypeWelcome:
		f := Welcome{Proto: r.u16(), ModelFormat: r.u16(), ModelVersion: r.u32(), NumFeatures: r.u16(), Model: r.str()}
		return r.finish(f)
	case TypeOpenStream:
		f := OpenStream{Stream: r.u32(), App: r.str()}
		return r.finish(f)
	case TypeSample:
		f := Sample{Stream: r.u32(), Seq: r.u32(), IngressNanos: r.u64()}
		n := int(r.u16())
		if n > MaxFeatures {
			return nil, fmt.Errorf("wire: sample with %d features exceeds max %d", n, MaxFeatures)
		}
		// Size-check before allocating so a lying header cannot force a
		// large allocation: n features need exactly 8n more bytes.
		if r.err == nil && len(body)-r.off != 8*n {
			return nil, fmt.Errorf("wire: sample payload has %d feature bytes, want %d", len(body)-r.off, 8*n)
		}
		if cap(feats) >= n {
			f.Features = feats[:n]
		} else {
			f.Features = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			f.Features[i] = r.f64()
		}
		return r.finish(f)
	case TypeVerdict:
		f := Verdict{Stream: r.u32(), Seq: r.u32(), Flags: r.u8(), Class: r.u8(), Score: r.f64(), Smoothed: r.f64()}
		return r.finish(f)
	case TypeCloseStream:
		f := CloseStream{Stream: r.u32()}
		return r.finish(f)
	case TypeStreamSummary:
		f := StreamSummary{Stream: r.u32(), ModelVersion: r.u32(), Samples: r.u64(), Shed: r.u64(), Alarms: r.u32(), MaxSmoothed: r.f64()}
		return r.finish(f)
	case TypeHeartbeat:
		f := Heartbeat{Nanos: r.u64(), ModelVersion: r.u32()}
		return r.finish(f)
	case TypeError:
		f := Error{Code: r.u16(), Msg: r.str()}
		return r.finish(f)
	default:
		return nil, fmt.Errorf("wire: unknown frame type 0x%02x", body[0])
	}
}

// Decode decodes the first complete frame in buf, returning the frame and
// the number of bytes consumed. It returns ErrIncomplete when buf ends
// mid-frame (read more and retry) and ErrFrameTooLarge when the header
// announces a frame above MaxPayload; it never panics on malformed input.
func Decode(buf []byte) (Frame, int, error) {
	if len(buf) < 4 {
		return nil, 0, ErrIncomplete
	}
	length := int(binary.BigEndian.Uint32(buf))
	if length < 1 {
		return nil, 0, errors.New("wire: zero-length frame")
	}
	if length > MaxPayload {
		return nil, 0, ErrFrameTooLarge
	}
	if len(buf) < 4+length {
		return nil, 0, ErrIncomplete
	}
	f, err := DecodePayload(buf[4:4+length], nil)
	if err != nil {
		return nil, 0, err
	}
	return f, 4 + length, nil
}
