package persist

import (
	"testing"

	"twosmart/internal/anomaly"
	"twosmart/internal/ml/ensemble"
	"twosmart/internal/ml/mltest"
	"twosmart/internal/ml/tree"
)

// FuzzUnmarshalClassifier pins that model blobs — which the streaming
// server loads from disk and whose format version travels in the wire
// handshake — can never panic the decoder, however malformed. A blob that
// does decode must survive re-marshalling (it is a real classifier, not a
// half-initialised one).
func FuzzUnmarshalClassifier(f *testing.F) {
	d := mltest.Gaussian2Class(120, 3, 2.0, 11)
	j48, err := (&tree.J48Trainer{MaxDepth: 3}).Train(d)
	if err != nil {
		f.Fatal(err)
	}
	blob, err := MarshalClassifier(j48)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	boosted, err := (&ensemble.AdaBoostTrainer{Base: &tree.J48Trainer{MaxDepth: 2}, Rounds: 2, Seed: 1}).Train(d)
	if err != nil {
		f.Fatal(err)
	}
	bblob, err := MarshalClassifier(boosted)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(bblob)
	f.Add([]byte(`{"v":1,"type":"j48","data":{}}`))
	f.Add([]byte(`{"v":0,"type":"j48","data":{}}`))
	f.Add([]byte(`{"v":1,"type":"adaboost","data":{"members":[],"alphas":[],"num_classes":0}}`))
	f.Add([]byte(`{"v":1,"type":"mlp","data":{"layers":[[[1e308]]]}}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := UnmarshalClassifier(data)
		if err != nil {
			return
		}
		if c == nil {
			t.Fatal("nil classifier with nil error")
		}
		if _, err := MarshalClassifier(c); err != nil {
			t.Fatalf("decoded classifier does not re-marshal: %v", err)
		}
	})
}

// FuzzUnmarshalEnvelope is the same never-panic pin for the stage-0
// anomaly envelope encoding: whatever the bytes, the decoder either
// errors or yields a Validate-clean envelope that re-marshals.
func FuzzUnmarshalEnvelope(f *testing.F) {
	env := &anomaly.Envelope{
		Features:  []string{"branch-instructions", "cache-references"},
		Lo:        []float64{10, 20},
		Hi:        []float64{100, 200},
		InvWidth:  []float64{1.0 / 90, 1.0 / 180},
		Threshold: 0.25,
		Budget:    0.001,
	}
	blob, err := MarshalEnvelope(env)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte(`{"v":1,"type":"anomaly-envelope","data":{}}`))
	f.Add([]byte(`{"v":1,"type":"anomaly-envelope","data":{"features":["x"],"lo":[0],"hi":[1],"inv_width":[1]}}`))
	f.Add([]byte(`{"v":1,"type":"anomaly-envelope","data":{"features":["x"],"lo":[1],"hi":[0],"inv_width":[1e308]}}`))
	f.Add([]byte(`{"v":2,"type":"anomaly-envelope","data":{}}`))
	f.Add([]byte(`{"v":1,"type":"j48","data":{}}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := UnmarshalEnvelope(data)
		if err != nil {
			return
		}
		if e == nil {
			t.Fatal("nil envelope with nil error")
		}
		if err := e.Validate(); err != nil {
			t.Fatalf("decoded envelope invalid: %v", err)
		}
		if _, err := MarshalEnvelope(e); err != nil {
			t.Fatalf("decoded envelope does not re-marshal: %v", err)
		}
	})
}
