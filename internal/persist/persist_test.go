package persist

import (
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"twosmart/internal/anomaly"
	"twosmart/internal/ml"
	"twosmart/internal/ml/bayes"
	"twosmart/internal/ml/ensemble"
	"twosmart/internal/ml/linear"
	"twosmart/internal/ml/mltest"
	"twosmart/internal/ml/nn"
	"twosmart/internal/ml/rules"
	"twosmart/internal/ml/tree"
)

func trainers() map[string]ml.Trainer {
	return map[string]ml.Trainer{
		"J48":      &tree.J48Trainer{},
		"JRip":     &rules.JRipTrainer{Seed: 1},
		"OneR":     &rules.OneRTrainer{},
		"MLP":      &nn.MLPTrainer{Epochs: 15, Seed: 1},
		"MLR":      &linear.MLRTrainer{Epochs: 15, Seed: 1},
		"AdaBoost": &ensemble.AdaBoostTrainer{Base: &tree.J48Trainer{MaxDepth: 3}, Rounds: 5, Seed: 1},
	}
}

// assertSameModel checks that two classifiers produce identical scores on a
// probe set.
func assertSameModel(t *testing.T, name string, a, b ml.Classifier, probes [][]float64) {
	t.Helper()
	if a.NumClasses() != b.NumClasses() {
		t.Fatalf("%s: class count changed across round trip", name)
	}
	for i, fv := range probes {
		sa, sb := a.Scores(fv), b.Scores(fv)
		for c := range sa {
			if math.Abs(sa[c]-sb[c]) > 1e-12 {
				t.Fatalf("%s: probe %d class %d: %v vs %v", name, i, c, sa[c], sb[c])
			}
		}
	}
}

func TestRoundTripAllFamilies(t *testing.T) {
	d := mltest.Gaussian2Class(400, 4, 2.0, 3)
	probes := make([][]float64, 0, 50)
	for _, ins := range d.Instances[:50] {
		probes = append(probes, ins.Features)
	}
	for name, tr := range trainers() {
		model, err := tr.Train(d)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		data, err := MarshalClassifier(model)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		restored, err := UnmarshalClassifier(data)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		assertSameModel(t, name, model, restored, probes)
	}
}

func TestRoundTripMulticlass(t *testing.T) {
	d := mltest.MultiClass(300, 3, 3, 2.5, 4)
	for name, tr := range trainers() {
		model, err := tr.Train(d)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		data, err := MarshalClassifier(model)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		restored, err := UnmarshalClassifier(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, ins := range d.Instances[:30] {
			if model.Predict(ins.Features) != restored.Predict(ins.Features) {
				t.Fatalf("%s: prediction changed across round trip", name)
			}
		}
	}
}

// TestFormatVersionBothDirections pins that version skew in either
// direction — an old pre-versioning blob (v0) and a blob from a newer
// build (v2) — fails with the typed ErrFormatVersion naming both versions,
// not with a shape-dependent decode error.
func TestFormatVersionBothDirections(t *testing.T) {
	d := mltest.Gaussian2Class(100, 2, 2.0, 7)
	model, err := (&tree.J48Trainer{}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := MarshalClassifier(model)
	if err != nil {
		t.Fatal(err)
	}
	var env map[string]json.RawMessage
	if err := json.Unmarshal(blob, &env); err != nil {
		t.Fatal(err)
	}
	if string(env["v"]) != "1" {
		t.Fatalf("marshalled envelope carries v=%s, want 1", env["v"])
	}

	reversion := func(v string) []byte {
		mod := map[string]json.RawMessage{}
		for k, raw := range env {
			mod[k] = raw
		}
		if v == "" {
			delete(mod, "v") // the pre-versioning format
		} else {
			mod["v"] = json.RawMessage(v)
		}
		out, err := json.Marshal(mod)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	for _, tc := range []struct {
		name, v, wantSub string
	}{
		{"too old (field absent)", "", "v0"},
		{"too new", "2", "v2"},
	} {
		_, err := UnmarshalClassifier(reversion(tc.v))
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !errors.Is(err, ErrFormatVersion) {
			t.Fatalf("%s: err %v does not match ErrFormatVersion", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.wantSub) || !strings.Contains(err.Error(), "v1") {
			t.Fatalf("%s: error %q does not name both the blob version (%s) and the supported v1", tc.name, err, tc.wantSub)
		}
	}

	// The supported version still round-trips.
	if _, err := UnmarshalClassifier(reversion("1")); err != nil {
		t.Fatalf("v1 blob rejected: %v", err)
	}

	// An ensemble member with a skewed version is caught too: versioning
	// applies to every nested envelope.
	boosted, err := (&ensemble.AdaBoostTrainer{Base: &tree.J48Trainer{MaxDepth: 3}, Rounds: 3, Seed: 1}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	bblob, err := MarshalClassifier(boosted)
	if err != nil {
		t.Fatal(err)
	}
	// The outer adaboost envelope keeps v1; only the first nested j48
	// member's envelope is skewed.
	skewed := []byte(strings.Replace(string(bblob), `{"v":1,"type":"j48"`, `{"v":9,"type":"j48"`, 1))
	if string(skewed) == string(bblob) {
		t.Fatal("test setup: nested member envelope not found in ensemble blob")
	}
	if _, err := UnmarshalClassifier(skewed); !errors.Is(err, ErrFormatVersion) {
		t.Fatalf("version-skewed nested member: err=%v, want ErrFormatVersion", err)
	}
}

// TestMissingFormatVersionMessage pins the wording of the v0 special
// case: a blob with no (or an explicit zero) "v" field is the
// pre-versioning format, and the error must name the missing field, the
// version this build expects, and suggest re-training — not read like a
// generic skew between two real versions.
func TestMissingFormatVersionMessage(t *testing.T) {
	d := mltest.Gaussian2Class(100, 2, 2.0, 7)
	model, err := (&tree.J48Trainer{}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := MarshalClassifier(model)
	if err != nil {
		t.Fatal(err)
	}
	var env map[string]json.RawMessage
	if err := json.Unmarshal(blob, &env); err != nil {
		t.Fatal(err)
	}
	mutate := func(v string) []byte {
		mod := map[string]json.RawMessage{}
		for k, raw := range env {
			mod[k] = raw
		}
		if v == "" {
			delete(mod, "v")
		} else {
			mod["v"] = json.RawMessage(v)
		}
		out, err := json.Marshal(mod)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	for _, tc := range []struct {
		name     string
		v        string
		wantSubs []string
	}{
		{"field absent", "", []string{`"v" field is missing or zero`, "v1", "re-train"}},
		{"explicit zero", "0", []string{`"v" field is missing or zero`, "v1", "re-train"}},
		// A real (non-zero) skew must NOT claim the field is missing.
		{"newer build", "3", []string{"v3", "v1", "retrain or re-export"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := UnmarshalClassifier(mutate(tc.v))
			if err == nil {
				t.Fatal("accepted")
			}
			if !errors.Is(err, ErrFormatVersion) {
				t.Fatalf("err %v does not match ErrFormatVersion", err)
			}
			for _, sub := range tc.wantSubs {
				if !strings.Contains(err.Error(), sub) {
					t.Fatalf("error %q missing %q", err, sub)
				}
			}
			if tc.v == "3" && strings.Contains(err.Error(), "missing") {
				t.Fatalf("real version skew misreported as a missing field: %q", err)
			}
		})
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalClassifier([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := UnmarshalClassifier([]byte(`{"v":1,"type":"svm","data":{}}`)); err == nil {
		t.Fatal("unknown type accepted")
	}
	// Valid envelope, corrupt payloads.
	for _, typ := range []string{"j48", "jrip", "oner", "mlp", "mlr", "adaboost"} {
		env, _ := json.Marshal(map[string]any{"v": FormatVersion, "type": typ, "data": map[string]any{}})
		if _, err := UnmarshalClassifier(env); err == nil {
			t.Fatalf("empty %s payload accepted", typ)
		}
	}
}

func TestUnmarshalRejectsCorruptTree(t *testing.T) {
	// A tree whose internal node points at itself must be rejected.
	payload := `{"v":1,"type":"j48","data":{"nodes":[{"feat":0,"threshold":1,"left":0,"right":0,"counts":[1,2],"leaf":false}],"num_classes":2}}`
	if _, err := UnmarshalClassifier([]byte(payload)); err == nil {
		t.Fatal("self-referential tree accepted")
	}
}

func TestUnmarshalRejectsInconsistentEnsemble(t *testing.T) {
	d := mltest.Gaussian2Class(100, 2, 2.0, 5)
	model, err := (&tree.J48Trainer{}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	member, err := MarshalClassifier(model)
	if err != nil {
		t.Fatal(err)
	}
	// Alphas length mismatch.
	env, _ := json.Marshal(map[string]any{
		"v":    FormatVersion,
		"type": "adaboost",
		"data": map[string]any{
			"members":     []json.RawMessage{member},
			"alphas":      []float64{0.5, 0.5},
			"num_classes": 2,
		},
	})
	if _, err := UnmarshalClassifier(env); err == nil {
		t.Fatal("mismatched ensemble accepted")
	}
}

func TestMarshalUnsupported(t *testing.T) {
	if _, err := MarshalClassifier(fake{}); err == nil {
		t.Fatal("unsupported classifier accepted")
	}
}

type fake struct{}

func (fake) NumClasses() int            { return 2 }
func (fake) Scores([]float64) []float64 { return []float64{1, 0} }
func (fake) Predict([]float64) int      { return 0 }

func TestRoundTripNaiveBayes(t *testing.T) {
	d := mltest.Gaussian2Class(300, 4, 2.0, 9)
	model, err := (&bayes.NBTrainer{}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalClassifier(model)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := UnmarshalClassifier(data)
	if err != nil {
		t.Fatal(err)
	}
	probes := make([][]float64, 0, 30)
	for _, ins := range d.Instances[:30] {
		probes = append(probes, ins.Features)
	}
	assertSameModel(t, "NaiveBayes", model, restored, probes)
	// Corrupt payload rejected.
	env, _ := json.Marshal(map[string]any{"v": FormatVersion, "type": "naivebayes", "data": map[string]any{"num_classes": 2}})
	if _, err := UnmarshalClassifier(env); err == nil {
		t.Fatal("corrupt NB payload accepted")
	}
}

func TestRoundTripEnvelope(t *testing.T) {
	e := &anomaly.Envelope{
		Features:  []string{"branch-instructions", "cache-references", "branch-misses", "node-stores"},
		Lo:        []float64{10, 20, 30, 40},
		Hi:        []float64{100, 200, 300, 400},
		InvWidth:  []float64{1.0 / 90, 1.0 / 180, 1.0 / 270, 1.0 / 360},
		Threshold: 0.125,
		Budget:    0.001,
	}
	blob, err := MarshalEnvelope(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalEnvelope(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Threshold != e.Threshold || got.Budget != e.Budget {
		t.Fatalf("threshold/budget changed across round trip: %+v", got)
	}
	for i := range e.Features {
		if got.Features[i] != e.Features[i] || got.Lo[i] != e.Lo[i] ||
			got.Hi[i] != e.Hi[i] || got.InvWidth[i] != e.InvWidth[i] {
			t.Fatalf("feature %d changed across round trip", i)
		}
	}
}

func TestEnvelopeRejections(t *testing.T) {
	valid := &anomaly.Envelope{
		Features: []string{"x"}, Lo: []float64{0}, Hi: []float64{1}, InvWidth: []float64{1},
	}
	blob, err := MarshalEnvelope(valid)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong format version is ErrFormatVersion, matchable with errors.Is.
	bad := []byte(strings.Replace(string(blob), `"v":1`, `"v":9`, 1))
	if _, err := UnmarshalEnvelope(bad); !errors.Is(err, ErrFormatVersion) {
		t.Fatalf("v9 envelope error = %v, want ErrFormatVersion", err)
	}
	// A classifier blob is not an envelope.
	d := mltest.Gaussian2Class(100, 2, 2.0, 7)
	model, err := (&tree.J48Trainer{}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	cblob, err := MarshalClassifier(model)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalEnvelope(cblob); err == nil {
		t.Fatal("classifier blob decoded as envelope")
	}
	// An invalid envelope never reaches disk...
	invalid := &anomaly.Envelope{Features: []string{"x"}, Lo: []float64{2}, Hi: []float64{1}, InvWidth: []float64{1}}
	if _, err := MarshalEnvelope(invalid); err == nil {
		t.Fatal("invalid envelope marshalled")
	}
	// ...and never comes back from it.
	forged := []byte(`{"v":1,"type":"anomaly-envelope","data":{"features":["x"],"lo":[2],"hi":[1],"inv_width":[1]}}`)
	if _, err := UnmarshalEnvelope(forged); err == nil {
		t.Fatal("invalid envelope decoded")
	}
}
