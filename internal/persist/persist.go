// Package persist serialises trained models to JSON and back: individual
// classifiers (J48, JRip, OneR, MLP, MLR and AdaBoost ensembles of them)
// and complete 2SMaRT detectors. This lets a detector trained once (e.g.
// by cmd/smartrain) be shipped to and loaded by a run-time monitor
// (cmd/smartdetect) without retraining — the deployment flow the paper's
// hardware implementation implies.
package persist

import (
	"encoding/json"
	"errors"
	"fmt"

	"twosmart/internal/anomaly"
	"twosmart/internal/ml"
	"twosmart/internal/ml/bayes"
	"twosmart/internal/ml/ensemble"
	"twosmart/internal/ml/linear"
	"twosmart/internal/ml/nn"
	"twosmart/internal/ml/rules"
	"twosmart/internal/ml/tree"
)

// FormatVersion is the serialised model format generation. Every envelope
// written by MarshalClassifier carries it, and UnmarshalClassifier refuses
// any other value with ErrFormatVersion — so a reader meeting a blob from
// an older or newer build fails with a clear "unsupported model format vN"
// error instead of a shape-dependent decode error deep inside a family
// decoder. Bump it on any incompatible change to the envelope or to a
// family's DTO. The streaming handshake (internal/wire.Welcome) advertises
// this value so agents can detect skew before sending samples.
const FormatVersion = 1

// ErrFormatVersion is wrapped by the error UnmarshalClassifier returns for
// a blob whose format version this build does not read; match it with
// errors.Is.
var ErrFormatVersion = errors.New("unsupported model format")

// envelope wraps a serialised classifier with its format version and
// family tag. Version 0 means the field is absent — the pre-versioning
// format — which is reported as unsupported like any other mismatch.
type envelope struct {
	Version int             `json:"v"`
	Type    string          `json:"type"`
	Data    json.RawMessage `json:"data"`
}

// Family tags.
const (
	typeJ48      = "j48"
	typeJRip     = "jrip"
	typeOneR     = "oner"
	typeMLP      = "mlp"
	typeMLR      = "mlr"
	typeNB       = "naivebayes"
	typeAdaBoost = "adaboost"
	typeAnomaly  = "anomaly-envelope"
)

type ensembleDTO struct {
	Members    []json.RawMessage `json:"members"`
	Alphas     []float64         `json:"alphas"`
	NumClasses int               `json:"num_classes"`
}

// MarshalClassifier serialises any supported trained classifier to a typed
// JSON envelope.
func MarshalClassifier(c ml.Classifier) ([]byte, error) {
	if data, ok, err := tree.Marshal(c); ok || err != nil {
		return wrap(typeJ48, data, err)
	}
	if data, ok, err := rules.MarshalJRip(c); ok || err != nil {
		return wrap(typeJRip, data, err)
	}
	if data, ok, err := rules.MarshalOneR(c); ok || err != nil {
		return wrap(typeOneR, data, err)
	}
	if data, ok, err := nn.Marshal(c); ok || err != nil {
		return wrap(typeMLP, data, err)
	}
	if data, ok, err := linear.Marshal(c); ok || err != nil {
		return wrap(typeMLR, data, err)
	}
	if data, ok, err := bayes.Marshal(c); ok || err != nil {
		return wrap(typeNB, data, err)
	}
	if members, alphas, ok := ensemble.Members(c); ok {
		dto := ensembleDTO{Alphas: alphas, NumClasses: c.NumClasses()}
		for _, m := range members {
			raw, err := MarshalClassifier(m)
			if err != nil {
				return nil, fmt.Errorf("persist: ensemble member: %w", err)
			}
			dto.Members = append(dto.Members, raw)
		}
		data, err := json.Marshal(dto)
		return wrap(typeAdaBoost, data, err)
	}
	return nil, fmt.Errorf("persist: unsupported classifier type %T", c)
}

func wrap(typ string, data []byte, err error) ([]byte, error) {
	if err != nil {
		return nil, err
	}
	return json.Marshal(envelope{Version: FormatVersion, Type: typ, Data: data})
}

// MarshalEnvelope serialises a trained stage-0 anomaly envelope to the
// same versioned JSON wrapper as classifiers, under its own family tag.
// The envelope is validated first so no invalid model ever reaches disk
// or a registry blob.
func MarshalEnvelope(e *anomaly.Envelope) ([]byte, error) {
	if err := e.Validate(); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	data, err := json.Marshal(e)
	return wrap(typeAnomaly, data, err)
}

// UnmarshalEnvelope reconstructs an anomaly envelope serialised by
// MarshalEnvelope, enforcing the format version and re-validating the
// decoded model.
func UnmarshalEnvelope(data []byte) (*anomaly.Envelope, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("persist: reading envelope: %w", err)
	}
	if env.Version != FormatVersion {
		return nil, fmt.Errorf("persist: %w v%d (this build reads v%d; re-train the envelope)",
			ErrFormatVersion, env.Version, FormatVersion)
	}
	if env.Type != typeAnomaly {
		return nil, fmt.Errorf("persist: blob is %q, not an anomaly envelope", env.Type)
	}
	var e anomaly.Envelope
	if err := json.Unmarshal(env.Data, &e); err != nil {
		return nil, fmt.Errorf("persist: decoding anomaly envelope: %w", err)
	}
	if err := e.Validate(); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	return &e, nil
}

// UnmarshalClassifier reconstructs a classifier serialised by
// MarshalClassifier.
func UnmarshalClassifier(data []byte) (ml.Classifier, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("persist: reading envelope: %w", err)
	}
	if env.Version == 0 {
		// The pre-versioning format: the "v" field is absent (or an
		// explicit zero, which no build ever wrote). Name the missing
		// field — "unsupported v0" alone reads like a decoder bug.
		return nil, fmt.Errorf(`persist: %w v0: the envelope's "v" field is missing or zero, so the blob predates format versioning (this build reads v%d; re-train the model with a current build)`,
			ErrFormatVersion, FormatVersion)
	}
	if env.Version != FormatVersion {
		return nil, fmt.Errorf("persist: %w v%d (this build reads v%d; retrain or re-export the model)",
			ErrFormatVersion, env.Version, FormatVersion)
	}
	switch env.Type {
	case typeJ48:
		return tree.Unmarshal(env.Data)
	case typeJRip:
		return rules.UnmarshalJRip(env.Data)
	case typeOneR:
		return rules.UnmarshalOneR(env.Data)
	case typeMLP:
		return nn.Unmarshal(env.Data)
	case typeMLR:
		return linear.Unmarshal(env.Data)
	case typeNB:
		return bayes.Unmarshal(env.Data)
	case typeAdaBoost:
		var dto ensembleDTO
		if err := json.Unmarshal(env.Data, &dto); err != nil {
			return nil, err
		}
		members := make([]ml.Classifier, len(dto.Members))
		for i, raw := range dto.Members {
			m, err := UnmarshalClassifier(raw)
			if err != nil {
				return nil, fmt.Errorf("persist: ensemble member %d: %w", i, err)
			}
			members[i] = m
		}
		return ensemble.FromMembers(members, dto.Alphas, dto.NumClasses)
	default:
		return nil, fmt.Errorf("persist: unknown classifier type %q", env.Type)
	}
}
