package isa

import (
	"testing"
	"testing/quick"
)

// Property-based tests over the program/stream invariants using
// testing/quick: whatever the (bounded) parameters, a valid program must
// produce exactly Budget instructions, stay inside its declared footprints,
// and replay identically.
func quickProgram(seed int64, budgetRaw uint16, loadFrac, branchFrac uint8, wsRaw uint16) *Program {
	budget := int64(budgetRaw)%5000 + 100
	lf := 0.05 + float64(loadFrac%100)/200  // 0.05 .. 0.55
	bf := 0.05 + float64(branchFrac%60)/200 // 0.05 .. 0.35
	ws := uint64(wsRaw)%(1<<16) + 256

	var mix OpMix
	mix[KindALU] = 1 - lf - bf
	mix[KindLoad] = lf
	mix[KindBranch] = bf
	return &Program{
		Name: "quick",
		Blocks: []Block{{
			Name:       "b",
			Mix:        mix,
			CodeBase:   0x1000,
			CodeSize:   4096,
			Loads:      AccessPattern{Kind: AccessRandom, Base: 0x10000, WorkingSet: ws},
			BranchBias: 0.5,
			Len:        50,
		}},
		Budget: budget,
		Seed:   seed,
	}
}

func TestQuickBudgetExact(t *testing.T) {
	f := func(seed int64, budget uint16, lf, bf uint8, ws uint16) bool {
		p := quickProgram(seed, budget, lf, bf, ws)
		if err := p.Validate(); err != nil {
			return false
		}
		return Count(p.MustStream()) == p.Budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAddressesInFootprint(t *testing.T) {
	f := func(seed int64, budget uint16, lf, bf uint8, ws uint16) bool {
		p := quickProgram(seed, budget, lf, bf, ws)
		s := p.MustStream()
		var ins Instr
		lo := p.Blocks[0].Loads.Base
		hi := lo + p.Blocks[0].Loads.WorkingSet
		for s.Next(&ins) {
			if ins.Kind == KindLoad && (ins.Addr < lo || ins.Addr >= hi) {
				return false
			}
			if ins.PC < p.Blocks[0].CodeBase || ins.PC >= p.Blocks[0].CodeBase+p.Blocks[0].CodeSize {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickReplayIdentical(t *testing.T) {
	f := func(seed int64, budget uint16, lf, bf uint8, ws uint16) bool {
		p := quickProgram(seed, budget, lf, bf, ws)
		a, b := p.MustStream(), p.MustStream()
		var ia, ib Instr
		for {
			oka := a.Next(&ia)
			okb := b.Next(&ib)
			if oka != okb {
				return false
			}
			if !oka {
				return true
			}
			if ia != ib {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
