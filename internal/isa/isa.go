// Package isa defines the instruction-stream representation shared by the
// workload generators and the microarchitecture simulator.
//
// The reproduction does not need a full binary ISA: hardware-performance-
// counter based malware detection observes only the *microarchitectural side
// effects* of execution (cache lookups, branch outcomes, TLB walks, memory
// node traffic). An instruction here therefore carries exactly the
// information the structural models in internal/microarch consume: its kind,
// its program-counter address (instruction-cache and iTLB behaviour), its
// effective memory address (data-cache and dTLB behaviour) and its branch
// outcome.
package isa

import "fmt"

// Kind enumerates the instruction classes the simulator distinguishes.
type Kind uint8

const (
	// KindALU is a simple integer ALU operation.
	KindALU Kind = iota
	// KindMul is an integer/floating multiply.
	KindMul
	// KindDiv is a long-latency divide.
	KindDiv
	// KindLoad reads memory at Addr.
	KindLoad
	// KindStore writes memory at Addr.
	KindStore
	// KindBranch is a conditional branch; Taken and Target describe the
	// resolved outcome.
	KindBranch
	// KindCall is an unconditional call (always taken control transfer).
	KindCall
	// KindReturn is a function return (always taken control transfer).
	KindReturn
	// KindSyscall is a system-call trap; it flushes speculative state.
	KindSyscall
	// KindNop does nothing but occupy a pipeline slot.
	KindNop

	numKinds = int(KindNop) + 1
)

// NumKinds is the number of distinct instruction kinds.
const NumKinds = numKinds

var kindNames = [...]string{
	KindALU:     "alu",
	KindMul:     "mul",
	KindDiv:     "div",
	KindLoad:    "load",
	KindStore:   "store",
	KindBranch:  "branch",
	KindCall:    "call",
	KindReturn:  "return",
	KindSyscall: "syscall",
	KindNop:     "nop",
}

// String returns the lower-case mnemonic for k.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsMem reports whether k accesses data memory.
func (k Kind) IsMem() bool { return k == KindLoad || k == KindStore }

// IsControl reports whether k transfers control flow.
func (k Kind) IsControl() bool {
	return k == KindBranch || k == KindCall || k == KindReturn
}

// Instr is one dynamic instruction in a program's execution trace.
type Instr struct {
	Kind   Kind
	PC     uint64 // virtual address of the instruction
	Addr   uint64 // effective address for loads/stores, else 0
	Taken  bool   // resolved outcome for conditional branches
	Target uint64 // branch/call target, else 0
}

// Stream produces a dynamic instruction trace. Implementations fill *Instr
// in place to avoid per-instruction allocation; Next returns false when the
// program has finished executing.
type Stream interface {
	Next(ins *Instr) bool
}

// Func adapts an ordinary function to the Stream interface.
type Func func(ins *Instr) bool

// Next implements Stream.
func (f Func) Next(ins *Instr) bool { return f(ins) }

// Concat returns a Stream that plays each input stream to completion in
// order.
func Concat(streams ...Stream) Stream {
	i := 0
	return Func(func(ins *Instr) bool {
		for i < len(streams) {
			if streams[i].Next(ins) {
				return true
			}
			i++
		}
		return false
	})
}

// Interleave returns a Stream that alternates between the input streams in
// round-robin quanta of the given instruction count, modelling timeslice
// interleaving of co-scheduled programs on one core. Exhausted streams drop
// out of the rotation; the result ends when every input has ended.
func Interleave(quantum int64, streams ...Stream) Stream {
	if quantum <= 0 {
		quantum = 1
	}
	live := append([]Stream(nil), streams...)
	cur := 0
	var left int64 = quantum
	return Func(func(ins *Instr) bool {
		for len(live) > 0 {
			if left <= 0 {
				cur = (cur + 1) % len(live)
				left = quantum
			}
			if live[cur].Next(ins) {
				left--
				return true
			}
			// Stream exhausted: remove it and continue with the next.
			live = append(live[:cur], live[cur+1:]...)
			if len(live) == 0 {
				return false
			}
			cur %= len(live)
			left = quantum
		}
		return false
	})
}

// Limit returns a Stream that yields at most n instructions from s.
func Limit(s Stream, n int64) Stream {
	remaining := n
	return Func(func(ins *Instr) bool {
		if remaining <= 0 {
			return false
		}
		if !s.Next(ins) {
			remaining = 0
			return false
		}
		remaining--
		return true
	})
}

// Count drains s and returns the number of instructions it produced.
// Intended for tests and tooling, not the hot path.
func Count(s Stream) int64 {
	var ins Instr
	var n int64
	for s.Next(&ins) {
		n++
	}
	return n
}
