package isa

import (
	"fmt"
	"math/rand"
)

// AccessKind selects how a block generates effective addresses for its loads
// and stores.
type AccessKind uint8

const (
	// AccessSequential walks memory with a fixed small stride (streaming).
	AccessSequential AccessKind = iota
	// AccessStrided walks memory with a configurable stride.
	AccessStrided
	// AccessRandom draws uniformly from the working set.
	AccessRandom
	// AccessPointerChase follows a pseudo-random permutation, defeating
	// both spatial locality and prefetching.
	AccessPointerChase
)

// AccessPattern describes the data-memory behaviour of a block.
type AccessPattern struct {
	Kind       AccessKind
	Base       uint64 // base virtual address of the region
	WorkingSet uint64 // region size in bytes (must be > 0 if the block has memory ops)
	Stride     uint64 // bytes, for AccessStrided (AccessSequential uses 8)
}

// OpMix gives the relative weight of each instruction kind emitted by a
// block. Weights need not sum to 1; they are normalised at build time.
type OpMix [NumKinds]float64

// Block is a basic-block archetype: a unit of straight-line-ish code with a
// characteristic instruction mix, memory behaviour and branch bias.
type Block struct {
	Name string
	Mix  OpMix

	// CodeBase/CodeSize bound the PCs generated for this block's
	// instructions, controlling instruction-cache and iTLB footprint.
	CodeBase uint64
	CodeSize uint64

	Loads  AccessPattern
	Stores AccessPattern

	// BranchBias is the probability that a conditional branch in this
	// block is taken.
	BranchBias float64
	// BranchEntropy in [0,1] controls how predictable branch outcomes
	// are: 0 means outcomes follow a short repeating history (easy for
	// the predictor), 1 means independent Bernoulli draws.
	BranchEntropy float64

	// Len is the number of instructions emitted per visit to the block.
	Len int
}

// Program is a Markov chain over block archetypes plus a total dynamic
// instruction budget. It is the common shape of both benign and malware
// workloads in this reproduction.
type Program struct {
	Name   string
	Blocks []Block
	// Trans[i][j] is the unnormalised probability of moving from block i
	// to block j after a visit. A nil Trans means uniform transitions.
	Trans  [][]float64
	Budget int64 // total dynamic instructions
	Seed   int64
}

// Validate checks structural invariants of the program description.
func (p *Program) Validate() error {
	if len(p.Blocks) == 0 {
		return fmt.Errorf("isa: program %q has no blocks", p.Name)
	}
	if p.Budget <= 0 {
		return fmt.Errorf("isa: program %q has non-positive budget %d", p.Name, p.Budget)
	}
	for i, b := range p.Blocks {
		if b.Len <= 0 {
			return fmt.Errorf("isa: program %q block %d (%s) has non-positive length", p.Name, i, b.Name)
		}
		if b.CodeSize == 0 {
			return fmt.Errorf("isa: program %q block %d (%s) has zero code size", p.Name, i, b.Name)
		}
		var total float64
		for _, w := range b.Mix {
			if w < 0 {
				return fmt.Errorf("isa: program %q block %d (%s) has negative mix weight", p.Name, i, b.Name)
			}
			total += w
		}
		if total == 0 {
			return fmt.Errorf("isa: program %q block %d (%s) has empty op mix", p.Name, i, b.Name)
		}
		if (b.Mix[KindLoad] > 0 && b.Loads.WorkingSet == 0) ||
			(b.Mix[KindStore] > 0 && b.Stores.WorkingSet == 0) {
			return fmt.Errorf("isa: program %q block %d (%s) has memory ops but no working set", p.Name, i, b.Name)
		}
	}
	if p.Trans != nil {
		if len(p.Trans) != len(p.Blocks) {
			return fmt.Errorf("isa: program %q transition matrix has %d rows, want %d", p.Name, len(p.Trans), len(p.Blocks))
		}
		for i, row := range p.Trans {
			if len(row) != len(p.Blocks) {
				return fmt.Errorf("isa: program %q transition row %d has %d cols, want %d", p.Name, i, len(row), len(p.Blocks))
			}
			var total float64
			for _, w := range row {
				if w < 0 {
					return fmt.Errorf("isa: program %q transition row %d has negative weight", p.Name, i)
				}
				total += w
			}
			if total == 0 {
				return fmt.Errorf("isa: program %q transition row %d sums to zero", p.Name, i)
			}
		}
	}
	return nil
}

// Stream compiles the program into a dynamic instruction stream. Each call
// returns an independent stream seeded from p.Seed, so repeated runs of the
// same program replay identical traces.
func (p *Program) Stream() (Stream, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return newProgramStream(p), nil
}

// MustStream is Stream but panics on an invalid program. Intended for
// statically-constructed workloads whose validity is covered by tests.
func (p *Program) MustStream() Stream {
	s, err := p.Stream()
	if err != nil {
		panic(err)
	}
	return s
}

type blockState struct {
	block *Block
	// cumulative mix for kind sampling
	cum [NumKinds]float64
	// per-pattern cursors
	loadCursor  uint64
	storeCursor uint64
	// branch history position for low-entropy blocks
	histPos int
	hist    []bool
	// branchSites are the static branch PCs of this block. Real code has
	// a handful of branch sites per block; concentrating dynamic
	// branches on them lets the modelled predictor train, so branch-miss
	// counts reflect outcome entropy rather than PC sparsity.
	branchSites [4]uint64
	nextSite    int
}

type programStream struct {
	prog    *Program
	rng     *rand.Rand
	states  []blockState
	cur     int   // current block index
	left    int   // instructions left in current block visit
	emitted int64 // total instructions emitted
	callPC  []uint64
}

func newProgramStream(p *Program) *programStream {
	ps := &programStream{
		prog:   p,
		rng:    rand.New(rand.NewSource(p.Seed)),
		states: make([]blockState, len(p.Blocks)),
	}
	for i := range p.Blocks {
		b := &p.Blocks[i]
		st := &ps.states[i]
		st.block = b
		var total float64
		for _, w := range b.Mix {
			total += w
		}
		var acc float64
		for k, w := range b.Mix {
			acc += w / total
			st.cum[k] = acc
		}
		// Low-entropy branch history: a loop-like repeating pattern (a
		// contiguous run of taken outcomes followed by not-taken ones)
		// whose taken-fraction approximates the bias. Runs are what
		// loop exit branches produce and are highly learnable.
		const histLen = 16
		st.hist = make([]bool, histLen)
		taken := int(b.BranchBias*histLen + 0.5)
		for j := 0; j < taken; j++ {
			st.hist[j] = true
		}
		for s := range st.branchSites {
			st.branchSites[s] = b.CodeBase + uint64(s)*(b.CodeSize/4)&^3
		}
	}
	ps.cur = 0
	ps.left = p.Blocks[0].Len
	return ps
}

func (ps *programStream) Next(ins *Instr) bool {
	if ps.emitted >= ps.prog.Budget {
		return false
	}
	if ps.left <= 0 {
		ps.advanceBlock()
	}
	st := &ps.states[ps.cur]
	b := st.block
	ps.left--
	ps.emitted++

	kind := ps.sampleKind(st)
	*ins = Instr{Kind: kind, PC: ps.pcFor(st)}

	switch kind {
	case KindLoad:
		ins.Addr = nextAddr(&b.Loads, &st.loadCursor, ps.rng)
	case KindStore:
		ins.Addr = nextAddr(&b.Stores, &st.storeCursor, ps.rng)
	case KindBranch:
		ins.PC = st.branchSites[st.nextSite]
		st.nextSite = (st.nextSite + 1) % len(st.branchSites)
		ins.Taken = ps.branchOutcome(st)
		if ins.Taken {
			ins.Target = b.CodeBase + ps.rng.Uint64()%b.CodeSize
		}
	case KindCall:
		ins.Taken = true
		// Calls target the start of another block's code region,
		// mimicking function entry points.
		callee := ps.rng.Intn(len(ps.prog.Blocks))
		ins.Target = ps.prog.Blocks[callee].CodeBase
		ps.callPC = append(ps.callPC, ins.PC+4)
	case KindReturn:
		ins.Taken = true
		if n := len(ps.callPC); n > 0 {
			ins.Target = ps.callPC[n-1]
			ps.callPC = ps.callPC[:n-1]
		} else {
			ins.Target = b.CodeBase
		}
	}
	return true
}

func (ps *programStream) sampleKind(st *blockState) Kind {
	u := ps.rng.Float64()
	for k := 0; k < NumKinds; k++ {
		if u <= st.cum[k] {
			return Kind(k)
		}
	}
	return KindALU
}

func (ps *programStream) pcFor(st *blockState) uint64 {
	b := st.block
	// Mostly-sequential fetch within the block's code region with
	// occasional jumps, approximating straight-line code plus loops.
	off := (uint64(ps.emitted) * 4) % b.CodeSize
	return b.CodeBase + off
}

func (ps *programStream) branchOutcome(st *blockState) bool {
	b := st.block
	if ps.rng.Float64() < b.BranchEntropy {
		return ps.rng.Float64() < b.BranchBias
	}
	out := st.hist[st.histPos]
	st.histPos = (st.histPos + 1) % len(st.hist)
	return out
}

func (ps *programStream) advanceBlock() {
	p := ps.prog
	if p.Trans == nil {
		ps.cur = ps.rng.Intn(len(p.Blocks))
	} else {
		row := p.Trans[ps.cur]
		var total float64
		for _, w := range row {
			total += w
		}
		u := ps.rng.Float64() * total
		var acc float64
		next := len(row) - 1
		for j, w := range row {
			acc += w
			if u <= acc {
				next = j
				break
			}
		}
		ps.cur = next
	}
	ps.left = p.Blocks[ps.cur].Len
}

func nextAddr(ap *AccessPattern, cursor *uint64, rng *rand.Rand) uint64 {
	ws := ap.WorkingSet
	if ws == 0 {
		return ap.Base
	}
	switch ap.Kind {
	case AccessSequential:
		a := ap.Base + (*cursor % ws)
		*cursor += 8
		return a
	case AccessStrided:
		stride := ap.Stride
		if stride == 0 {
			stride = 64
		}
		a := ap.Base + (*cursor % ws)
		*cursor += stride
		return a
	case AccessRandom:
		return ap.Base + (rng.Uint64()%ws)&^7
	case AccessPointerChase:
		// A linear-congruential permutation walk over the working set:
		// successive addresses are far apart and unpredictable, like a
		// pointer chase through a shuffled linked list.
		*cursor = (*cursor*6364136223846793005 + 1442695040888963407)
		return ap.Base + (*cursor%ws)&^7
	default:
		return ap.Base
	}
}
