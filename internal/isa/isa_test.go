package isa

import (
	"math"
	"testing"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindALU:     "alu",
		KindLoad:    "load",
		KindStore:   "store",
		KindBranch:  "branch",
		KindSyscall: "syscall",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String()=%q, want %q", k, got, want)
		}
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestKindPredicates(t *testing.T) {
	if !KindLoad.IsMem() || !KindStore.IsMem() || KindALU.IsMem() {
		t.Error("IsMem wrong")
	}
	if !KindBranch.IsControl() || !KindCall.IsControl() || !KindReturn.IsControl() || KindLoad.IsControl() {
		t.Error("IsControl wrong")
	}
}

func simpleBlock() Block {
	var mix OpMix
	mix[KindALU] = 0.5
	mix[KindLoad] = 0.2
	mix[KindStore] = 0.1
	mix[KindBranch] = 0.2
	return Block{
		Name:     "b",
		Mix:      mix,
		CodeBase: 0x1000,
		CodeSize: 4096,
		Loads:    AccessPattern{Kind: AccessSequential, Base: 0x100000, WorkingSet: 1 << 16},
		Stores:   AccessPattern{Kind: AccessSequential, Base: 0x200000, WorkingSet: 1 << 16},
		Len:      100,
	}
}

func simpleProgram(budget int64, seed int64) *Program {
	return &Program{
		Name:   "test",
		Blocks: []Block{simpleBlock()},
		Budget: budget,
		Seed:   seed,
	}
}

func TestProgramValidate(t *testing.T) {
	p := simpleProgram(1000, 1)
	if err := p.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}

	bad := simpleProgram(1000, 1)
	bad.Blocks = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty blocks accepted")
	}

	bad = simpleProgram(0, 1)
	if err := bad.Validate(); err == nil {
		t.Error("zero budget accepted")
	}

	bad = simpleProgram(100, 1)
	bad.Blocks[0].Len = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero-length block accepted")
	}

	bad = simpleProgram(100, 1)
	bad.Blocks[0].Mix = OpMix{}
	if err := bad.Validate(); err == nil {
		t.Error("empty mix accepted")
	}

	bad = simpleProgram(100, 1)
	bad.Blocks[0].Loads.WorkingSet = 0
	if err := bad.Validate(); err == nil {
		t.Error("memory ops without working set accepted")
	}

	bad = simpleProgram(100, 1)
	bad.Trans = [][]float64{{1}, {1}}
	if err := bad.Validate(); err == nil {
		t.Error("wrong-shaped transition matrix accepted")
	}

	bad = simpleProgram(100, 1)
	bad.Trans = [][]float64{{0}}
	if err := bad.Validate(); err == nil {
		t.Error("zero transition row accepted")
	}
}

func TestStreamBudget(t *testing.T) {
	p := simpleProgram(1234, 7)
	s, err := p.Stream()
	if err != nil {
		t.Fatal(err)
	}
	if n := Count(s); n != 1234 {
		t.Fatalf("stream emitted %d instructions, want 1234", n)
	}
}

func TestStreamDeterministic(t *testing.T) {
	p := simpleProgram(5000, 42)
	s1 := p.MustStream()
	s2 := p.MustStream()
	var a, b Instr
	for i := 0; i < 5000; i++ {
		ok1 := s1.Next(&a)
		ok2 := s2.Next(&b)
		if ok1 != ok2 {
			t.Fatalf("streams diverge in length at %d", i)
		}
		if a != b {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestStreamSeedChangesTrace(t *testing.T) {
	a := simpleProgram(2000, 1).MustStream()
	b := simpleProgram(2000, 2).MustStream()
	var ia, ib Instr
	diff := 0
	for a.Next(&ia) && b.Next(&ib) {
		if ia != ib {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestStreamMixApproximation(t *testing.T) {
	p := simpleProgram(200000, 3)
	s := p.MustStream()
	var ins Instr
	counts := make(map[Kind]int64)
	var total int64
	for s.Next(&ins) {
		counts[ins.Kind]++
		total++
	}
	wantFrac := map[Kind]float64{KindALU: 0.5, KindLoad: 0.2, KindStore: 0.1, KindBranch: 0.2}
	for k, want := range wantFrac {
		got := float64(counts[k]) / float64(total)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("kind %v fraction = %.3f, want ~%.2f", k, got, want)
		}
	}
}

func TestStreamAddressesWithinWorkingSet(t *testing.T) {
	p := simpleProgram(50000, 9)
	s := p.MustStream()
	var ins Instr
	for s.Next(&ins) {
		switch ins.Kind {
		case KindLoad:
			if ins.Addr < 0x100000 || ins.Addr >= 0x100000+1<<16 {
				t.Fatalf("load address %#x outside working set", ins.Addr)
			}
		case KindStore:
			if ins.Addr < 0x200000 || ins.Addr >= 0x200000+1<<16 {
				t.Fatalf("store address %#x outside working set", ins.Addr)
			}
		}
		if ins.PC < 0x1000 || ins.PC >= 0x1000+4096 {
			t.Fatalf("PC %#x outside code region", ins.PC)
		}
	}
}

func TestBranchBias(t *testing.T) {
	p := simpleProgram(100000, 5)
	p.Blocks[0].BranchBias = 0.9
	p.Blocks[0].BranchEntropy = 1.0
	s := p.MustStream()
	var ins Instr
	var taken, branches int
	for s.Next(&ins) {
		if ins.Kind == KindBranch {
			branches++
			if ins.Taken {
				taken++
			}
		}
	}
	frac := float64(taken) / float64(branches)
	if math.Abs(frac-0.9) > 0.03 {
		t.Fatalf("taken fraction = %.3f, want ~0.9", frac)
	}
}

func TestLowEntropyBranchesRepeat(t *testing.T) {
	p := simpleProgram(10000, 5)
	p.Blocks[0].BranchBias = 0.5
	p.Blocks[0].BranchEntropy = 0 // fully patterned
	s := p.MustStream()
	var ins Instr
	var outcomes []bool
	for s.Next(&ins) {
		if ins.Kind == KindBranch {
			outcomes = append(outcomes, ins.Taken)
		}
	}
	if len(outcomes) < 64 {
		t.Fatalf("too few branches: %d", len(outcomes))
	}
	// Pattern repeats with period 16.
	for i := 16; i < len(outcomes); i++ {
		if outcomes[i] != outcomes[i-16] {
			t.Fatalf("low-entropy outcomes not periodic at %d", i)
		}
	}
}

func TestMarkovTransitions(t *testing.T) {
	b0 := simpleBlock()
	b0.Name = "a"
	b1 := simpleBlock()
	b1.Name = "b"
	b1.CodeBase = 0x9000
	p := &Program{
		Name:   "markov",
		Blocks: []Block{b0, b1},
		// Always move to the other block.
		Trans:  [][]float64{{0, 1}, {1, 0}},
		Budget: 1000,
		Seed:   1,
	}
	s, err := p.Stream()
	if err != nil {
		t.Fatal(err)
	}
	var ins Instr
	sawA, sawB := false, false
	for s.Next(&ins) {
		if ins.PC >= 0x9000 {
			sawB = true
		} else {
			sawA = true
		}
	}
	if !sawA || !sawB {
		t.Fatalf("markov chain did not visit both blocks (a=%v b=%v)", sawA, sawB)
	}
}

func TestConcatAndLimit(t *testing.T) {
	p1 := simpleProgram(100, 1).MustStream()
	p2 := simpleProgram(200, 2).MustStream()
	if n := Count(Concat(p1, p2)); n != 300 {
		t.Fatalf("Concat count = %d, want 300", n)
	}
	p3 := simpleProgram(1000, 3).MustStream()
	if n := Count(Limit(p3, 150)); n != 150 {
		t.Fatalf("Limit count = %d, want 150", n)
	}
	p4 := simpleProgram(10, 4).MustStream()
	if n := Count(Limit(p4, 100)); n != 10 {
		t.Fatalf("Limit beyond end count = %d, want 10", n)
	}
}

func TestMustStreamPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustStream did not panic on invalid program")
		}
	}()
	(&Program{Name: "bad"}).MustStream()
}

func TestCallReturnTargets(t *testing.T) {
	b := simpleBlock()
	b.Mix = OpMix{}
	b.Mix[KindCall] = 0.5
	b.Mix[KindReturn] = 0.5
	p := &Program{Name: "callret", Blocks: []Block{b}, Budget: 1000, Seed: 6}
	s := p.MustStream()
	var ins Instr
	for s.Next(&ins) {
		if !ins.Taken {
			t.Fatal("call/return must be taken")
		}
		if ins.Target == 0 {
			t.Fatal("call/return must have a target")
		}
	}
}

func TestInterleave(t *testing.T) {
	a := simpleProgram(100, 1).MustStream()
	b := simpleProgram(200, 2).MustStream()
	if n := Count(Interleave(10, a, b)); n != 300 {
		t.Fatalf("interleave count=%d, want 300", n)
	}
	// Quanta alternate: with quantum 10, the first 10 instructions come
	// from stream a, the next 10 from b.
	a2 := simpleProgram(100, 1).MustStream()
	b2 := simpleProgram(200, 2).MustStream()
	ref := simpleProgram(100, 1).MustStream()
	inter := Interleave(10, a2, b2)
	var got, want Instr
	for i := 0; i < 10; i++ {
		if !inter.Next(&got) || !ref.Next(&want) || got != want {
			t.Fatalf("first quantum diverges at %d", i)
		}
	}
	// Next quantum must come from stream b (different code base is not
	// guaranteed, but the trace must diverge from ref's continuation).
	refNext := make([]Instr, 10)
	gotNext := make([]Instr, 10)
	for i := 0; i < 10; i++ {
		ref.Next(&refNext[i])
		inter.Next(&gotNext[i])
	}
	same := true
	for i := range refNext {
		if refNext[i] != gotNext[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("second quantum did not switch streams")
	}
	// Zero/negative quantum clamps rather than hanging.
	if n := Count(Interleave(0, simpleProgram(5, 3).MustStream())); n != 5 {
		t.Fatalf("quantum clamp failed: %d", n)
	}
	// Uneven lengths: short stream drops out, long stream finishes.
	short := simpleProgram(7, 4).MustStream()
	long := simpleProgram(50, 5).MustStream()
	if n := Count(Interleave(4, short, long)); n != 57 {
		t.Fatalf("uneven interleave count=%d, want 57", n)
	}
	if n := Count(Interleave(8)); n != 0 {
		t.Fatalf("empty interleave count=%d", n)
	}
}
