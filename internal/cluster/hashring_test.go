package cluster

import (
	"fmt"
	"testing"
)

func TestRingEmpty(t *testing.T) {
	r := BuildRing(nil, 0)
	if got := r.Route("anything"); got != "" {
		t.Fatalf("empty ring routed to %q, want \"\"", got)
	}
	if len(r.Members()) != 0 {
		t.Fatalf("empty ring has members %v", r.Members())
	}
}

func TestRingDeterministic(t *testing.T) {
	members := []string{"10.0.0.1:7644", "10.0.0.2:7644", "10.0.0.3:7644"}
	a := BuildRing(members, 64)
	// Same members in a different order (and with a duplicate) must build
	// the identical ring — the gateway and the load generator construct it
	// independently and have to agree.
	b := BuildRing([]string{"10.0.0.3:7644", "10.0.0.1:7644", "10.0.0.2:7644", "10.0.0.1:7644"}, 64)
	for i := 0; i < 1000; i++ {
		key := RouteKey(fmt.Sprintf("agent-%d", i), fmt.Sprintf("app-%d", i%7))
		if a.Route(key) != b.Route(key) {
			t.Fatalf("key %q routes to %q vs %q on order-permuted rings", key, a.Route(key), b.Route(key))
		}
	}
}

func TestRingBalance(t *testing.T) {
	members := []string{"s1", "s2", "s3", "s4"}
	r := BuildRing(members, DefaultReplicas)
	counts := make(map[string]int, len(members))
	const keys = 20000
	for i := 0; i < keys; i++ {
		counts[r.Route(RouteKey(fmt.Sprintf("agent-%d", i%500), fmt.Sprintf("app-%d", i)))]++
	}
	for _, m := range members {
		share := float64(counts[m]) / keys
		// With 128 vnodes the share concentrates near 1/4; allow a wide
		// band so the test pins "spread", not a specific hash layout.
		if share < 0.12 || share > 0.40 {
			t.Fatalf("member %s owns %.1f%% of keys, want roughly 25%% (counts %v)", m, 100*share, counts)
		}
	}
}

// TestRingSequentialKeys pins the hash finalizer: keys differing only in
// a trailing counter — the common naming shape for agents and apps —
// must still spread across members. Raw FNV-1a fails this (its last
// bytes barely avalanche, so sequential keys cluster on one vnode arc).
func TestRingSequentialKeys(t *testing.T) {
	r := BuildRing([]string{"127.0.0.1:7644", "127.0.0.1:7645"}, DefaultReplicas)
	counts := make(map[string]int)
	const streams = 16
	for s := 0; s < streams; s++ {
		counts[r.Route(RouteKey("agent", fmt.Sprintf("app-%d", s)))]++
	}
	for m, n := range counts {
		if n == streams {
			t.Fatalf("all %d sequential keys routed to %s: %v", streams, m, counts)
		}
	}
	if len(counts) < 2 {
		t.Fatalf("sequential keys touched %d members, want 2: %v", len(counts), counts)
	}
}

// TestRingChurn pins the consistent-hashing contract the reroute design
// depends on: removing one member moves only that member's keys.
func TestRingChurn(t *testing.T) {
	before := BuildRing([]string{"s1", "s2", "s3"}, DefaultReplicas)
	after := BuildRing([]string{"s1", "s3"}, DefaultReplicas)
	moved := 0
	const keys = 5000
	for i := 0; i < keys; i++ {
		key := RouteKey(fmt.Sprintf("agent-%d", i), "app")
		b, a := before.Route(key), after.Route(key)
		if b != "s2" && a != b {
			t.Fatalf("key %q moved %q→%q although its member survived", key, b, a)
		}
		if b == "s2" {
			moved++
			if a == "s2" {
				t.Fatalf("key %q still routes to the removed member", key)
			}
		}
	}
	if moved == 0 {
		t.Fatal("no key ever routed to s2; balance is broken")
	}
}

func TestRouteKey(t *testing.T) {
	if RouteKey("agent", "app") != "agent|app" {
		t.Fatalf("RouteKey = %q", RouteKey("agent", "app"))
	}
	if RouteKey("a", "b|c") == RouteKey("a|b", "c") {
		// Collisions here would be unfortunate but are acceptable: both
		// streams simply share a shard. Pin the current behavior so a
		// change to the key layout is a conscious one.
		t.Log("note: RouteKey is ambiguous for apps containing '|'")
	}
}
