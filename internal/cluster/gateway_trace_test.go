package cluster

import (
	"context"
	"testing"
	"time"

	"twosmart/internal/serve"
	"twosmart/internal/telemetry"
	"twosmart/internal/trace"
)

// TestClusterTraceEndToEnd runs the full gateway→shard topology with
// tracing on both tiers and pins the fleet-level trace contract: the
// gateway emits gateway-tier records attributing its route/queue and
// forward time per shard, the shard's records carry a positive gateway
// hop (proof the v3 ingress stamp crossed the wire), and the health
// prober publishes a per-shard RTT gauge.
func TestClusterTraceEndToEnd(t *testing.T) {
	det, data := fixtures(t)

	shardTr := trace.New(trace.Config{SampleEvery: 1, Depth: 512})
	shardReg := telemetry.New()
	srv, err := serve.New(serve.Config{
		Detector:  det,
		Telemetry: shardReg,
		Log:       quietLog(),
		Tracer:    shardTr,
	})
	if err != nil {
		t.Fatal(err)
	}
	shardAddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	shardCtx, shardCancel := context.WithCancel(context.Background())
	shardDone := make(chan error, 1)
	go func() { shardDone <- srv.Serve(shardCtx) }()
	t.Cleanup(func() {
		shardCancel()
		select {
		case <-shardDone:
		case <-time.After(10 * time.Second):
			t.Error("shard did not drain within 10s")
		}
	})

	gwTr := trace.New(trace.Config{SampleEvery: 1, Depth: 512})
	gwReg := telemetry.New()
	gw, err := New(Config{
		Shards:        []string{shardAddr.String()},
		CheckInterval: 50 * time.Millisecond,
		DialTimeout:   2 * time.Second,
		Telemetry:     gwReg,
		Log:           quietLog(),
		Tracer:        gwTr,
	})
	if err != nil {
		t.Fatal(err)
	}
	gwAddr, err := gw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	gwCtx, gwCancel := context.WithCancel(context.Background())
	gwDone := make(chan error, 1)
	go func() { gwDone <- gw.Serve(gwCtx) }()
	t.Cleanup(func() {
		gwCancel()
		select {
		case err := <-gwDone:
			if err != nil {
				t.Errorf("gateway Serve: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("gateway did not drain within 10s")
		}
	})

	dialCtx, dialCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dialCancel()
	c, err := serve.Dial(dialCtx, gwAddr.String(), testAgent)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	const streams, perStream = 4, 30
	for s := 0; s < streams; s++ {
		if err := c.OpenStream(uint32(s), testApp(s)); err != nil {
			t.Fatal(err)
		}
	}
	sendWave(t, c, data, streams, 0, perStream)
	for s := 0; s < streams; s++ {
		if err := c.CloseStream(uint32(s)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	verdicts := make(map[uint32]int)
	collect(t, c, verdicts, streams)

	// Gateway tier: route/queue + forward attribution, shard identity on
	// every record, hops telescoping exactly to the total.
	grecs := gwTr.Snapshot()
	if len(grecs) == 0 {
		t.Fatal("gateway captured no trace records with SampleEvery=1")
	}
	for _, r := range grecs {
		if r.Tier != trace.TierGateway {
			t.Fatalf("gateway record tier %q, want %q", r.Tier, trace.TierGateway)
		}
		if r.Shard != shardAddr.String() {
			t.Fatalf("gateway record shard %q, want %q", r.Shard, shardAddr)
		}
		var sum int64
		for h, d := range r.Hops {
			if d < 0 {
				t.Fatalf("gateway hop %s negative: %d", trace.HopNames[h], d)
			}
			sum += d
		}
		if sum != r.TotalNanos {
			t.Fatalf("gateway hops sum %d != total %d (record %+v)", sum, r.TotalNanos, r)
		}
		// The gateway is the ingress edge and never scores: those hops
		// belong to upstream stampers and the shard respectively.
		if r.Hops[trace.HopGateway] != 0 || r.Hops[trace.HopScore] != 0 {
			t.Fatalf("gateway record claims gateway/score time: %+v", r)
		}
	}

	// Shard tier: the forwarded frames carried the gateway's ingress
	// stamp, so the shard attributes cross-process gateway time.
	srecs := shardTr.Snapshot()
	if len(srecs) == 0 {
		t.Fatal("shard captured no trace records")
	}
	stamped := 0
	for _, r := range srecs {
		if r.Tier != trace.TierShard {
			t.Fatalf("shard record tier %q, want %q", r.Tier, trace.TierShard)
		}
		if r.Hops[trace.HopGateway] > 0 {
			stamped++
		}
	}
	if stamped == 0 {
		t.Fatalf("no shard record carries a gateway hop; IngressNanos did not survive forwarding (%d records)", len(srecs))
	}

	// The health prober publishes its heartbeat RTT per shard.
	rttName := telemetry.Label("cluster_probe_rtt_seconds", "shard", shardAddr.String())
	deadline := time.Now().Add(5 * time.Second)
	for gwReg.Gauge(rttName).Value() <= 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%s never became positive", rttName)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
