package cluster

import (
	"testing"

	"twosmart/internal/anomaly"
	"twosmart/internal/dataset"
	"twosmart/internal/telemetry"
	"twosmart/internal/wire"
	"twosmart/internal/workload"
)

// trainEnvelope fits an edge envelope over the benign instances of the
// package fixture corpus.
func trainEnvelope(t *testing.T, data *dataset.Dataset) *anomaly.Envelope {
	t.Helper()
	var benign [][]float64
	for _, ins := range data.Instances {
		if workload.Class(ins.Label) == workload.Benign {
			benign = append(benign, ins.Features)
		}
	}
	env, err := anomaly.Train(data.FeatureNames, benign, anomaly.TrainConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// TestGatewayEdgeCascadeShortCircuitAll puts a wide-open envelope at the
// gateway edge: every sample is answered by the gateway itself, nothing
// reaches the shard, and the closing summary still accounts for every
// sample sent.
func TestGatewayEdgeCascadeShortCircuitAll(t *testing.T) {
	_, data := fixtures(t)
	env := trainEnvelope(t, data)
	sh := startShard(t)
	tg := startGatewayWith(t, []string{sh.addr}, func(c *Config) {
		c.Envelope = env
		c.CascadeThreshold = 1e18
	})
	c := dialGateway(t, tg, testAgent)

	const n = 48
	if err := c.OpenStream(1, "gwapp-cascade"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		fv := data.Instances[i%data.Len()].Features
		if err := c.Send(1, uint32(i), fv); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CloseStream(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	verdicts := map[uint32]int{}
	shorts := 0
	var sum wire.StreamSummary
	for {
		f, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if v, ok := f.(wire.Verdict); ok {
			verdicts[v.Stream]++
			if v.Flags&wire.FlagShortCircuit == 0 {
				t.Fatalf("verdict seq %d missing short-circuit flag (flags %08b)", v.Seq, v.Flags)
			}
			if v.Class != uint8(workload.Benign) || v.Score != 0 {
				t.Fatalf("verdict seq %d: class %d score %v, want benign 0", v.Seq, v.Class, v.Score)
			}
			shorts++
			continue
		}
		if s, ok := f.(wire.StreamSummary); ok {
			sum = s
			break
		}
		t.Fatalf("unexpected frame %#v", f)
	}
	if shorts != n {
		t.Fatalf("short-circuit verdicts %d, want %d", shorts, n)
	}
	if sum.Samples != n {
		t.Fatalf("summary samples %d, want %d (short-circuits must be folded in)", sum.Samples, n)
	}
	if got := tg.reg.Counter("cascade_short_total").Value(); got != n {
		t.Fatalf("cascade_short_total = %d, want %d", got, n)
	}
	if got := tg.reg.Counter("cascade_pass_total").Value(); got != 0 {
		t.Fatalf("cascade_pass_total = %d, want 0", got)
	}
	if got := tg.reg.Counter("cascade_stage0_nanos_total").Value(); got == 0 {
		t.Fatal("cascade_stage0_nanos_total = 0, want > 0")
	}
	// The shard tier never saw a sample from the agent stream.
	if got := tg.reg.Counter(telemetry.Label("cluster_samples_forwarded_total", "shard", sh.addr)).Value(); got != 0 {
		t.Fatalf("shard forwarded %d samples, want 0", got)
	}
}

// TestGatewayEdgeCascadeMixed runs the edge cascade at its calibrated
// threshold over a mixed corpus slice: short-circuit verdicts come from
// the gateway, the rest from the shard, and every sample gets exactly one
// verdict.
func TestGatewayEdgeCascadeMixed(t *testing.T) {
	_, data := fixtures(t)
	env := trainEnvelope(t, data)
	sh := startShard(t)
	tg := startGatewayWith(t, []string{sh.addr}, func(c *Config) {
		c.Envelope = env
	})
	c := dialGateway(t, tg, testAgent)

	const n = 96
	wantShorts := 0
	if err := c.OpenStream(1, "gwapp-mixed"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		fv := data.Instances[i%data.Len()].Features
		if env.Score(fv) <= env.Threshold {
			wantShorts++
		}
		if err := c.Send(1, uint32(i), fv); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CloseStream(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if wantShorts == 0 || wantShorts == n {
		t.Fatalf("degenerate partition %d/%d; fixture corpus should mix", wantShorts, n)
	}

	total, shorts := 0, 0
	var sum wire.StreamSummary
	for {
		f, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if v, ok := f.(wire.Verdict); ok {
			total++
			if v.Flags&wire.FlagShortCircuit != 0 {
				shorts++
			}
			continue
		}
		if s, ok := f.(wire.StreamSummary); ok {
			sum = s
			break
		}
		t.Fatalf("unexpected frame %#v", f)
	}
	if total != n {
		t.Fatalf("verdicts %d, want %d", total, n)
	}
	if shorts != wantShorts {
		t.Fatalf("short-circuit verdicts %d, want %d", shorts, wantShorts)
	}
	if sum.Samples != n {
		t.Fatalf("summary samples %d, want %d", sum.Samples, n)
	}
	if got := tg.reg.Counter("cascade_short_total").Value(); got != uint64(wantShorts) {
		t.Fatalf("cascade_short_total = %d, want %d", got, wantShorts)
	}
	if got := tg.reg.Counter("cascade_pass_total").Value(); got != uint64(n-wantShorts) {
		t.Fatalf("cascade_pass_total = %d, want %d", got, n-wantShorts)
	}
}
