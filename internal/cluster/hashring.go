package cluster

import (
	"sort"
	"strconv"
)

// Ring is an immutable consistent-hash ring over a set of members (shard
// addresses). Each member is projected onto the 64-bit FNV-1a hash circle
// at Replicas virtual-node points; a key routes to the member owning the
// first point clockwise of the key's hash. Virtual nodes smooth the load
// split (with ~100 vnodes per member the per-member share of the keyspace
// concentrates near 1/N), and consistent hashing bounds churn: removing
// one member from a ring of N moves only ~1/N of the keys, so a shard
// death reroutes only the streams that shard owned.
//
// A Ring is immutable after Build; membership changes build a new Ring
// and swap it in atomically (see Gateway), so routing never locks.
type Ring struct {
	points  []ringPoint
	members []string
}

type ringPoint struct {
	hash   uint64
	member string
}

// DefaultReplicas is the virtual-node count per member used when a caller
// passes replicas <= 0.
const DefaultReplicas = 128

// BuildRing constructs a ring over members with the given virtual-node
// count per member (DefaultReplicas when <= 0). Duplicate members are
// collapsed. An empty member set yields a ring that routes everything to
// "".
func BuildRing(members []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	sort.Strings(uniq)
	r := &Ring{
		points:  make([]ringPoint, 0, len(uniq)*replicas),
		members: uniq,
	}
	for _, m := range uniq {
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{hash: fnv64a(m + "#" + strconv.Itoa(i)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// Route returns the member owning key, or "" for an empty ring. The same
// (members, replicas, key) always routes identically — agents and load
// generators can predict placement (cmd/smartload -cluster does, to
// report per-shard skew).
func (r *Ring) Route(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := fnv64a(key)
	// First point with hash >= h, wrapping past the top of the circle.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// Members returns the ring's member set, sorted and deduplicated.
func (r *Ring) Members() []string { return r.members }

// RouteKey builds the canonical (agent, app) stream routing key. Keying
// by agent+app (rather than by connection) makes placement stable across
// agent reconnects and spreads one agent's apps over the fleet.
func RouteKey(agent, app string) string { return agent + "|" + app }

// fnv64a is 64-bit FNV-1a over the key bytes with a murmur3-style
// finalizer — fast, allocation-free and stable across processes (gateway
// and load generator must agree). The finalizer matters: raw FNV-1a
// barely avalanches its last bytes, so keys differing only in a trailing
// counter ("app-0", "app-1", …) land within ~255·prime of each other on
// the 2^64 circle — one vnode arc — and a whole family of sequentially
// named streams would pile onto one shard.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
