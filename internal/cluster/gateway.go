// Package cluster is the sharded gateway tier: a wire-protocol front end
// that fans a fleet of agent connections out over N backend smartserve
// shards. Agents speak the exact same protocol to the gateway as to a
// single server — the gateway completes their handshake, then routes each
// (agent, app) stream to a shard by consistent hash and relays samples up
// and verdicts back.
//
// The gateway reuses the internal/session stream engine for its hot path:
// the same drop-oldest ingress ring, unsheddable control queue and
// adaptive micro-batch worker loop that internal/serve scores with, but
// with a forwarding handler instead of a scoring one. One copy of the
// per-stream machinery, two tiers (DESIGN §12).
//
// Placement: streams route on a consistent-hash ring with virtual nodes
// (see Ring) keyed by RouteKey(agent, app), over the currently healthy
// shard set. A health loop probes every configured shard each
// CheckInterval with a Heartbeat round-trip on a dedicated probe
// connection; data-path failures mark a shard down immediately. Any
// change to the healthy set builds a new ring and bumps the membership
// epoch; streams notice the epoch change on their next batch, drain off
// their old shard (CloseStream upstream, summary suppressed) and re-open
// on their new one. Rerouting resets the stream's monitor state on the
// new shard — the smoothing window restarts — which is the price of
// keeping shards stateless about each other.
//
// Delivery semantics across failover are at-least-once: a batch that
// fails mid-send is re-sent in full to the replacement shard, so a few
// samples around the failure may be scored twice (and the verdicts for
// in-flight samples on the dead shard are lost). With no healthy shard a
// stream's batches are dropped and counted (cluster_samples_dropped_total)
// rather than killing the agent connection — agents ride out a full
// outage and resume when a shard returns.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"twosmart/internal/anomaly"
	"twosmart/internal/samplelog"
	"twosmart/internal/serve"
	"twosmart/internal/session"
	"twosmart/internal/telemetry"
	"twosmart/internal/trace"
	"twosmart/internal/wire"
	"twosmart/internal/workload"
)

// handshakeTimeout bounds the agent-side Hello/Welcome exchange.
const handshakeTimeout = 10 * time.Second

// Config configures a Gateway.
type Config struct {
	// Shards lists the backend smartserve addresses. Required, >= 1.
	Shards []string
	// Replicas is the virtual-node count per shard on the hash ring
	// (default DefaultReplicas).
	Replicas int
	// CheckInterval is the shard health-probe period (default 2s).
	CheckInterval time.Duration
	// DialTimeout bounds each upstream dial + handshake (default 3s).
	DialTimeout time.Duration
	// QueueDepth bounds each agent connection's ingress ring (default
	// 4096); beyond it the oldest queued samples are shed.
	QueueDepth int
	// Telemetry, when non-nil, receives the cluster_* metric families.
	Telemetry *telemetry.Registry
	// Tracer, when non-nil, samples forwarded batches into gateway-tier
	// trace records (queue wait, routing/assembly, upstream write). The
	// forwarded Sample frames additionally carry the gateway's ingress
	// stamp regardless of Tracer, so the shard tier can attribute the
	// gateway→shard hop in its own end-to-end records.
	Tracer *trace.Tracer
	// SampleLog, when non-nil, records every arriving sample to the
	// durable sample log at the gateway edge. Forwarded records carry no
	// verdict (FlagScored clear) — the gateway never sees scores
	// correlated to features — so backtests skip them while replay uses
	// them like any other record. Records the edge cascade short-circuits
	// are the exception: they carry their synthesized benign verdict
	// (FlagScored|FlagShortCircuit). Append copies and never blocks. The
	// caller keeps ownership and Closes it after Serve returns.
	SampleLog *samplelog.Writer
	// Envelope, when non-nil, runs the stage-0 anomaly cascade at the
	// fleet edge: samples the envelope scores as clear benign are answered
	// directly by the gateway (a synthesized benign Verdict carrying
	// wire.FlagShortCircuit) and never forwarded, so the shard tier only
	// spends scoring work on pass-throughs. Shard-side EWMA smoothing then
	// observes only the passed samples — the gateway's synthesized
	// verdicts carry no smoothing (DESIGN §15 records the tradeoff). The
	// envelope's feature width is checked against the fleet's Welcome
	// template per agent connection; on mismatch the cascade is skipped
	// for that connection and a warning logged once.
	Envelope *anomaly.Envelope
	// CascadeThreshold is the operator's short-circuit knob, matching
	// smartserve's: 0 uses the envelope's calibrated threshold, > 0
	// overrides it, < 0 disables the edge cascade even with an Envelope
	// configured.
	CascadeThreshold float64
	// Log receives lifecycle events (default slog.Default).
	Log *slog.Logger
}

func (c Config) fill() (Config, error) {
	if len(c.Shards) == 0 {
		return c, errors.New("cluster: no shards configured")
	}
	seen := make(map[string]bool, len(c.Shards))
	for _, s := range c.Shards {
		if s == "" {
			return c, errors.New("cluster: empty shard address")
		}
		if seen[s] {
			return c, fmt.Errorf("cluster: duplicate shard %q", s)
		}
		seen[s] = true
	}
	if c.Replicas <= 0 {
		c.Replicas = DefaultReplicas
	}
	if c.CheckInterval <= 0 {
		c.CheckInterval = 2 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 3 * time.Second
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4096
	}
	if c.QueueDepth < 1 {
		return c, fmt.Errorf("cluster: queue depth %d below 1", c.QueueDepth)
	}
	if c.Log == nil {
		c.Log = slog.Default()
	}
	return c, nil
}

// routeState is one immutable routing generation: the ring over the
// healthy shards plus the membership epoch it was built at. Streams
// compare epochs to detect membership changes without locking.
type routeState struct {
	epoch uint64
	ring  *Ring
}

// shardMetrics caches one shard's labeled instruments so the data path
// never formats label strings. isCanary mirrors the canary gauge as an
// atomic so the per-sample forward path can test it without locking.
type shardMetrics struct {
	routed    telemetry.Counter
	forwarded telemetry.Counter
	relayed   telemetry.Counter
	up        telemetry.Gauge
	probeRTT  telemetry.Gauge
	version   telemetry.Gauge
	canary    telemetry.Gauge
	isCanary  atomic.Bool
}

// Gateway accepts agent connections and routes their streams across the
// shard fleet.
type Gateway struct {
	cfg Config

	ln net.Listener
	wg sync.WaitGroup

	routeP  atomic.Pointer[routeState]
	welcome atomic.Pointer[wire.Welcome] // shard Welcome template for agent handshakes

	mu       sync.Mutex
	epoch    uint64
	up       map[string]bool
	probes   map[string]*serve.Client
	perSh    map[string]*shardMetrics
	versions map[string]uint32 // live per-shard model version, fed by heartbeat echoes

	connsActive    telemetry.Gauge
	connsTotal     telemetry.Counter
	samplesIn      telemetry.Counter
	shed           telemetry.Counter
	protoErrs      telemetry.Counter
	rerouted       telemetry.Counter
	drained        telemetry.Counter
	dropped        telemetry.Counter
	shardsHealthy  telemetry.Gauge
	memberChanges  telemetry.Counter
	batchSize      telemetry.Histogram
	healthFailures telemetry.Counter
	canaryStreams  telemetry.Counter
	canarySamples  telemetry.Counter

	// edge cascade, resolved at New (nil = disabled). The cascade_*
	// instruments exist only on a cascade-running gateway.
	cascade          *anomaly.Compiled
	cascadeWidth     int
	cascadeThreshold float64
	cascadeWarn      sync.Once
	cascadeShort     telemetry.Counter
	cascadePass      telemetry.Counter
	cascadeNanos     telemetry.Counter
	cascadeSamples   telemetry.Counter
}

// batchSizeBuckets mirrors serve's adaptive micro-batch histogram layout.
var batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// New validates the configuration and builds a gateway. Call Listen then
// Serve.
func New(cfg Config) (*Gateway, error) {
	filled, err := cfg.fill()
	if err != nil {
		return nil, err
	}
	reg := filled.Telemetry
	g := &Gateway{
		cfg:            filled,
		up:             make(map[string]bool, len(filled.Shards)),
		probes:         make(map[string]*serve.Client, len(filled.Shards)),
		perSh:          make(map[string]*shardMetrics, len(filled.Shards)),
		versions:       make(map[string]uint32, len(filled.Shards)),
		connsActive:    reg.Gauge("cluster_connections_active"),
		connsTotal:     reg.Counter("cluster_connections_total"),
		samplesIn:      reg.Counter("cluster_samples_total"),
		shed:           reg.Counter("cluster_shed_total"),
		protoErrs:      reg.Counter("cluster_protocol_errors_total"),
		rerouted:       reg.Counter("cluster_streams_rerouted_total"),
		drained:        reg.Counter("cluster_streams_drained_total"),
		dropped:        reg.Counter("cluster_samples_dropped_total"),
		shardsHealthy:  reg.Gauge("cluster_shards_healthy"),
		memberChanges:  reg.Counter("cluster_membership_changes_total"),
		batchSize:      reg.Histogram("cluster_batch_size", batchSizeBuckets),
		healthFailures: reg.Counter("cluster_health_check_failures_total"),
		canaryStreams:  reg.Counter("cluster_canary_streams_total"),
		canarySamples:  reg.Counter("cluster_canary_samples_total"),
	}
	if filled.Envelope != nil && filled.CascadeThreshold >= 0 {
		if err := filled.Envelope.Validate(); err != nil {
			return nil, fmt.Errorf("cluster: cascade envelope: %w", err)
		}
		g.cascade = filled.Envelope.Compile()
		g.cascadeWidth = filled.Envelope.NumFeatures()
		g.cascadeThreshold = filled.Envelope.Threshold
		if filled.CascadeThreshold > 0 {
			g.cascadeThreshold = filled.CascadeThreshold
		}
		g.cascadeShort = reg.Counter("cascade_short_total")
		g.cascadePass = reg.Counter("cascade_pass_total")
		g.cascadeNanos = reg.Counter("cascade_stage0_nanos_total")
		g.cascadeSamples = reg.Counter("cascade_stage0_samples_total")
	}
	g.routeP.Store(&routeState{epoch: 0, ring: BuildRing(nil, filled.Replicas)})
	return g, nil
}

// metricsFor returns shard's cached labeled instruments.
func (g *Gateway) metricsFor(shard string) *shardMetrics {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.metricsForLocked(shard)
}

func (g *Gateway) metricsForLocked(shard string) *shardMetrics {
	m := g.perSh[shard]
	if m == nil {
		reg := g.cfg.Telemetry
		m = &shardMetrics{
			routed:    reg.Counter(telemetry.Label("cluster_streams_routed_total", "shard", shard)),
			forwarded: reg.Counter(telemetry.Label("cluster_samples_forwarded_total", "shard", shard)),
			relayed:   reg.Counter(telemetry.Label("cluster_verdicts_relayed_total", "shard", shard)),
			up:        reg.Gauge(telemetry.Label("cluster_shard_up", "shard", shard)),
			probeRTT:  reg.Gauge(telemetry.Label("cluster_probe_rtt_seconds", "shard", shard)),
			version:   reg.Gauge(telemetry.Label("cluster_shard_model_version", "shard", shard)),
			canary:    reg.Gauge(telemetry.Label("cluster_shard_canary", "shard", shard)),
		}
		g.perSh[shard] = m
	}
	return m
}

// route returns the current routing generation.
func (g *Gateway) route() *routeState { return g.routeP.Load() }

// setHealth records one shard's probe outcome and rebuilds the ring when
// the healthy set changed.
func (g *Gateway) setHealth(shard string, healthy bool) {
	g.mu.Lock()
	if g.up[shard] == healthy {
		g.mu.Unlock()
		return
	}
	g.up[shard] = healthy
	g.rebuildLocked(shard, healthy)
	g.mu.Unlock()
}

// reportFailure marks a shard down from the data path (a failed dial,
// send or relay read), without waiting for the next health pass. The
// probe connection, if any, is torn down so the health loop re-dials.
func (g *Gateway) reportFailure(shard string) {
	g.mu.Lock()
	if !g.up[shard] {
		g.mu.Unlock()
		return
	}
	g.up[shard] = false
	if p := g.probes[shard]; p != nil {
		p.Close()
		delete(g.probes, shard)
	}
	g.rebuildLocked(shard, false)
	g.mu.Unlock()
}

// rebuildLocked swaps in a new ring over the healthy set and bumps the
// membership epoch. Caller holds g.mu.
func (g *Gateway) rebuildLocked(shard string, healthy bool) {
	members := make([]string, 0, len(g.up))
	for s, ok := range g.up {
		if ok {
			members = append(members, s)
		}
	}
	g.epoch++
	g.routeP.Store(&routeState{epoch: g.epoch, ring: BuildRing(members, g.cfg.Replicas)})
	g.memberChanges.Inc()
	g.shardsHealthy.Set(float64(len(members)))
	if m := g.metricsForLocked(shard); healthy {
		m.up.Set(1)
	} else {
		m.up.Set(0)
	}
	g.recomputeCanaryLocked()
	g.cfg.Log.Info("shard membership changed",
		"shard", shard, "healthy", healthy,
		"fleet", len(members), "epoch", g.epoch)
}

// observeVersion records the model version a shard reported in its
// heartbeat echo — the live feed that keeps per-shard version tracking
// correct across hot swaps (the dial-time Welcome goes stale the moment
// a swap lands).
func (g *Gateway) observeVersion(shard string, v uint32) {
	if v == 0 {
		return // pre-registry shard; nothing to track
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.versions[shard] == v {
		return
	}
	g.versions[shard] = v
	g.metricsForLocked(shard).version.Set(float64(v))
	g.recomputeCanaryLocked()
	g.cfg.Log.Info("shard model version observed", "shard", shard, "version", v)
}

// recomputeCanaryLocked relabels the canary split after any version or
// membership change. The baseline is the version most healthy shards
// report (ties break toward the older version — a rollout pins the
// newer candidate to the minority); every healthy shard on a different
// version is a canary. The agent-facing Welcome template follows the
// baseline so new agents see the fleet's version, not whichever shard
// happened to be probed last. Caller holds g.mu.
func (g *Gateway) recomputeCanaryLocked() {
	counts := make(map[uint32]int)
	for s, up := range g.up {
		if up {
			if v := g.versions[s]; v != 0 {
				counts[v]++
			}
		}
	}
	var baseline uint32
	for v, n := range counts {
		if baseline == 0 || n > counts[baseline] || (n == counts[baseline] && v < baseline) {
			baseline = v
		}
	}
	for s := range g.up {
		m := g.metricsForLocked(s)
		isCanary := baseline != 0 && g.up[s] && g.versions[s] != 0 && g.versions[s] != baseline
		m.isCanary.Store(isCanary)
		if isCanary {
			m.canary.Set(1)
		} else {
			m.canary.Set(0)
		}
	}
	if w := g.welcome.Load(); w != nil && baseline != 0 && w.ModelVersion != baseline {
		nw := *w
		nw.ModelVersion = baseline
		g.welcome.Store(&nw)
	}
}

// checkShard runs one health probe: ensure a probe connection exists
// (dial + handshake), then round-trip a Heartbeat under a deadline.
func (g *Gateway) checkShard(ctx context.Context, shard string) bool {
	g.mu.Lock()
	cli := g.probes[shard]
	g.mu.Unlock()
	if cli == nil {
		dctx, cancel := context.WithTimeout(ctx, g.cfg.DialTimeout)
		c, err := serve.DialOnce(dctx, shard, "smartgw-health")
		cancel()
		if err != nil {
			g.healthFailures.Inc()
			return false
		}
		w := c.Welcome()
		g.welcome.Store(&w)
		g.mu.Lock()
		g.probes[shard] = c
		g.mu.Unlock()
		cli = c
	}
	probeStart := time.Now()
	var echoedVersion uint32
	ok := func() bool {
		if err := cli.Heartbeat(uint64(probeStart.UnixNano())); err != nil {
			return false
		}
		if err := cli.Flush(); err != nil {
			return false
		}
		cli.SetReadDeadline(time.Now().Add(g.cfg.DialTimeout))
		defer cli.SetReadDeadline(time.Time{})
		f, err := cli.Next()
		if err != nil {
			return false
		}
		hb, isHB := f.(wire.Heartbeat)
		if isHB {
			echoedVersion = hb.ModelVersion
		}
		return isHB
	}()
	if ok {
		g.metricsFor(shard).probeRTT.Set(time.Since(probeStart).Seconds())
		g.observeVersion(shard, echoedVersion)
	}
	if !ok {
		g.healthFailures.Inc()
		cli.Close()
		g.mu.Lock()
		if g.probes[shard] == cli {
			delete(g.probes, shard)
		}
		g.mu.Unlock()
	}
	return ok
}

// checkAll probes every configured shard once and applies the outcomes.
func (g *Gateway) checkAll(ctx context.Context) {
	for _, shard := range g.cfg.Shards {
		if ctx.Err() != nil {
			return
		}
		g.setHealth(shard, g.checkShard(ctx, shard))
	}
}

// Listen binds the gateway's TCP listener and returns the bound address.
func (g *Gateway) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	g.ln = ln
	return ln.Addr(), nil
}

// Serve runs the health loop and accepts agent connections until ctx is
// cancelled, then drains: the listener closes, every agent connection's
// read side is shut, queued samples are forwarded and flushed, and Serve
// returns nil. The first health pass runs synchronously so the earliest
// agents have a routable fleet.
func (g *Gateway) Serve(ctx context.Context) error {
	if g.ln == nil {
		return errors.New("cluster: Serve before Listen")
	}
	g.checkAll(ctx)

	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			g.ln.Close()
		case <-stop:
		}
	}()
	healthDone := make(chan struct{})
	go func() {
		defer close(healthDone)
		t := time.NewTicker(g.cfg.CheckInterval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				g.checkAll(ctx)
			}
		}
	}()

	for {
		nc, err := g.ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				break
			}
			g.wg.Wait()
			<-healthDone
			return fmt.Errorf("cluster: accept: %w", err)
		}
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			g.handle(ctx, nc)
		}()
	}
	g.cfg.Log.Info("gateway draining", "reason", context.Cause(ctx))
	g.wg.Wait()
	<-healthDone
	g.mu.Lock()
	for s, p := range g.probes {
		p.Close()
		delete(g.probes, s)
	}
	g.mu.Unlock()
	return nil
}

// gconn is the agent side of one gateway connection: wire transport plus
// the session engine driving a forwarder.
type gconn struct {
	g   *Gateway
	nc  net.Conn
	r   *wire.Reader
	fwd *forwarder
	eng *session.Engine

	// cascade is the gateway's compiled edge envelope, bound after the
	// handshake iff its width matches the fleet's feature width (nil
	// otherwise — the cascade silently disables for this connection).
	cascade          *anomaly.Compiled
	cascadeThreshold float64

	wmu sync.Mutex
	w   *wire.Writer

	readerDone chan struct{}
}

func (g *Gateway) handle(ctx context.Context, nc net.Conn) {
	g.connsTotal.Inc()
	g.connsActive.Add(1)
	defer g.connsActive.Add(-1)
	defer nc.Close()
	log := g.cfg.Log.With("remote", nc.RemoteAddr().String())

	c := &gconn{
		g:          g,
		nc:         nc,
		w:          wire.NewWriter(nc),
		readerDone: make(chan struct{}),
	}
	agent, err := c.handshake()
	if err != nil {
		log.Warn("handshake", "err", err)
		return
	}
	if g.cascade != nil {
		if n := int(g.welcome.Load().NumFeatures); n == g.cascadeWidth {
			c.cascade = g.cascade
			c.cascadeThreshold = g.cascadeThreshold
		} else {
			g.cascadeWarn.Do(func() {
				g.cfg.Log.Warn("edge cascade disabled: envelope width does not match fleet",
					"envelope", g.cascadeWidth, "fleet", n)
			})
		}
	}
	c.fwd = &forwarder{c: c, agent: agent, ups: make(map[string]*upstream)}
	// Workers is pinned to 1: the forwarder's upstream map and stream
	// routing state are worker-owned, and forwarding is I/O-bound — the
	// per-stream fan-out that pays for scoring would only buy races here.
	c.eng, err = session.New(session.Config{
		Handler:    c.fwd,
		QueueDepth: g.cfg.QueueDepth,
		Workers:    1,
		OnReject:   c.reject,
		BatchSize:  g.batchSize,
	})
	if err != nil {
		log.Error("session", "err", err)
		return
	}

	stopWatch := make(chan struct{})
	defer close(stopWatch)
	go func() {
		select {
		case <-ctx.Done():
			closeRead(nc)
		case <-stopWatch:
		}
	}()

	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		if err := c.eng.Run(c.readerDone); err != nil {
			log.Warn("connection worker", "err", err)
			nc.Close()
		}
	}()

	rerr := c.readLoop()
	close(c.readerDone)
	<-workerDone

	if ctx.Err() != nil {
		c.writeFrame(wire.Error{Code: wire.CodeDraining, Msg: "gateway draining"})
	}
	c.flush()
	c.fwd.shutdown()
	if rerr != nil && !errors.Is(rerr, io.EOF) && ctx.Err() == nil {
		log.Warn("connection closed", "err", rerr)
	} else {
		log.Debug("connection closed")
	}
}

func closeRead(nc net.Conn) {
	type readCloser interface{ CloseRead() error }
	if rc, ok := nc.(readCloser); ok {
		rc.CloseRead()
		return
	}
	nc.SetReadDeadline(time.Now())
}

// handshake accepts the agent's Hello and answers with the fleet's
// Welcome template (captured from shard probes). With no shard ever seen
// the gateway cannot promise a feature width, so it refuses the
// connection with CodeUnavailable and the agent retries later.
func (c *gconn) handshake() (agent string, err error) {
	c.nc.SetReadDeadline(time.Now().Add(handshakeTimeout))
	r := wire.NewReader(c.nc)
	f, err := r.Next()
	if err != nil {
		return "", err
	}
	hello, ok := f.(wire.Hello)
	if !ok {
		c.writeFrame(wire.Error{Code: wire.CodeProtocol, Msg: "expected Hello"})
		c.flush()
		return "", fmt.Errorf("first frame is %T, want Hello", f)
	}
	if hello.Proto != wire.ProtoVersion {
		c.writeFrame(wire.Error{Code: wire.CodeVersion,
			Msg: fmt.Sprintf("protocol v%d unsupported, gateway speaks v%d", hello.Proto, wire.ProtoVersion)})
		c.flush()
		return "", fmt.Errorf("client protocol v%d, want v%d", hello.Proto, wire.ProtoVersion)
	}
	w := c.g.welcome.Load()
	if w == nil {
		c.writeFrame(wire.Error{Code: wire.CodeUnavailable, Msg: "no healthy shard behind the gateway"})
		c.flush()
		return "", errors.New("no shard welcome template yet")
	}
	c.nc.SetReadDeadline(time.Time{})
	c.r = r
	c.writeFrame(*w)
	return hello.Agent, c.flush()
}

// readLoop parses agent frames into the engine until EOF or error —
// the same shape as the shard's read loop, because the agent cannot tell
// the tiers apart.
func (c *gconn) readLoop() error {
	numFeatures := int(c.g.welcome.Load().NumFeatures)
	for {
		f, err := c.r.Next()
		if err != nil {
			return err
		}
		switch fr := f.(type) {
		case wire.Sample:
			if len(fr.Features) != numFeatures {
				c.g.protoErrs.Inc()
				c.writeFrame(wire.Error{Code: wire.CodeBadFeatures,
					Msg: fmt.Sprintf("sample has %d features, model wants %d", len(fr.Features), numFeatures)})
				c.flush()
				return fmt.Errorf("sample width %d, want %d", len(fr.Features), numFeatures)
			}
			c.g.samplesIn.Inc()
			// Origin 0: the gateway is the fleet's ingress edge; its own
			// receive time (the Push timestamp) becomes the stamp the
			// forwarder puts on the upstream Sample frames.
			if c.eng.Push(fr.Stream, fr.Seq, 0, time.Now(), fr.Features) {
				c.g.shed.Inc()
			}
		case wire.OpenStream:
			c.eng.Open(fr.Stream, fr.App)
		case wire.CloseStream:
			c.eng.Close(fr.Stream)
		case wire.Heartbeat:
			c.writeFrame(fr)
			c.flush()
		default:
			c.g.protoErrs.Inc()
			c.writeFrame(wire.Error{Code: wire.CodeProtocol, Msg: fmt.Sprintf("unexpected frame type 0x%02x", f.Type())})
			c.flush()
			return fmt.Errorf("unexpected frame %T", f)
		}
	}
}

func (c *gconn) reject(id uint32, app string, reason session.RejectReason) {
	c.g.protoErrs.Inc()
	switch reason {
	case session.RejectDupStream:
		c.writeFrame(wire.Error{Code: wire.CodeBadStream, Msg: fmt.Sprintf("stream %d already open", id)})
	case session.RejectDupApp:
		c.writeFrame(wire.Error{Code: wire.CodeBadStream,
			Msg: fmt.Sprintf("app %q already streamed on this connection", app)})
	case session.RejectUnknownClose:
		c.writeFrame(wire.Error{Code: wire.CodeBadStream, Msg: fmt.Sprintf("stream %d not open", id)})
	case session.RejectUnknownSample:
		// Counted only, like the shard tier.
	}
}

func (c *gconn) writeFrame(f wire.Frame) {
	c.wmu.Lock()
	c.w.Write(f)
	c.wmu.Unlock()
}

func (c *gconn) flush() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.w.Flush()
}

// forwarder is the gateway's session.Handler: it relays each stream's
// micro-batches to the shard the hash ring picked. All methods and all
// fwdStream methods run on the engine's single worker goroutine; only the
// per-upstream relay goroutines run beside it.
type forwarder struct {
	c     *gconn
	agent string
	ups   map[string]*upstream // worker-owned: live upstream per shard
}

// OpenStream routes the stream and announces it upstream. Routing
// failures do not error the session: the stream starts unplaced and every
// batch retries, so a brief full-fleet outage sheds samples, not
// connections.
func (f *forwarder) OpenStream(id uint32, app string) (session.Stream, error) {
	st := &fwdStream{f: f, id: id, app: app, key: RouteKey(f.agent, app)}
	if f.c.cascade != nil {
		reg := f.c.g.cfg.Telemetry
		st.appShort = reg.Counter(telemetry.Label("cascade_app_short_total", "app", app))
		st.appPass = reg.Counter(telemetry.Label("cascade_app_pass_total", "app", app))
	}
	st.ensureRoute()
	return st, nil
}

// RoundEnd flushes every live upstream's buffered frames, then the agent
// connection — one syscall per peer per round.
func (f *forwarder) RoundEnd() error {
	for shard, up := range f.ups {
		if up.dead.Load() {
			continue
		}
		if err := up.cli.Flush(); err != nil {
			up.fail()
			f.c.g.cfg.Log.Warn("upstream flush", "shard", shard, "err", err)
		}
	}
	return f.c.flush()
}

// upstreamFor returns the live upstream connection to shard, dialing one
// (plus its relay goroutine) on first use or after a failure.
func (f *forwarder) upstreamFor(shard string) (*upstream, error) {
	if up := f.ups[shard]; up != nil {
		if !up.dead.Load() {
			return up, nil
		}
		up.cli.Close()
		delete(f.ups, shard)
	}
	g := f.c.g
	// DialOnce, not Dial: a refused connection must fail the placement
	// immediately (and refresh the ring via reportFailure) — the agent
	// retry-on-refused loop would park the engine worker for DialTimeout
	// behind a shard that is already gone.
	dctx, cancel := context.WithTimeout(context.Background(), g.cfg.DialTimeout)
	cli, err := serve.DialOnce(dctx, shard, f.agent)
	cancel()
	if err != nil {
		return nil, err
	}
	up := &upstream{
		g:        g,
		c:        f.c,
		shard:    shard,
		cli:      cli,
		met:      g.metricsFor(shard),
		perState: make(map[uint32]closeState),
		done:     make(chan struct{}),
	}
	f.ups[shard] = up
	go up.relay()
	return up, nil
}

// shutdown tears down every upstream and waits for the relays so no
// goroutine outlives the agent connection. The closing flag keeps the
// relays' resulting read errors from being misread as shard failures —
// an agent hanging up must not mark its shards unhealthy.
func (f *forwarder) shutdown() {
	for _, up := range f.ups {
		up.closing.Store(true)
		up.cli.Close()
	}
	for _, up := range f.ups {
		<-up.done
	}
}

// closeState is the relay-side bookkeeping for one stream's CloseStream
// sent upstream: either its summary is suppressed (the stream drained to
// another shard mid-flight) or the gateway-side shed count to fold into
// the shard's StreamSummary before forwarding it.
type closeState struct {
	suppress bool
	shed     uint64
	// short is the gateway-side short-circuit count folded into the
	// shard's StreamSummary.Samples, so the agent's closing record still
	// accounts for every sample it sent even though the shard never saw
	// the short-circuited ones.
	short uint64
}

// upstream is one gateway→shard data connection shared by all streams of
// one agent connection that route to that shard, plus the relay goroutine
// carrying shard frames back to the agent.
type upstream struct {
	g       *Gateway
	c       *gconn
	shard   string
	cli     *serve.Client
	met     *shardMetrics
	dead    atomic.Bool
	closing atomic.Bool // deliberate local teardown, not a shard failure

	mu       sync.Mutex
	perState map[uint32]closeState

	done chan struct{}
}

// fail marks the upstream dead and the shard unhealthy; streams reroute
// on their next batch.
func (up *upstream) fail() {
	if up.dead.CompareAndSwap(false, true) {
		up.cli.Close()
		up.g.reportFailure(up.shard)
	}
}

func (up *upstream) setCloseState(id uint32, cs closeState) {
	up.mu.Lock()
	up.perState[id] = cs
	up.mu.Unlock()
}

func (up *upstream) takeCloseState(id uint32) closeState {
	up.mu.Lock()
	cs := up.perState[id]
	delete(up.perState, id)
	up.mu.Unlock()
	return cs
}

// relay pumps shard frames back to the agent: verdicts pass through
// (counted per shard), stream summaries get the gateway-side shed folded
// in (or are suppressed for drained streams), shard errors terminate the
// upstream. Flushes batch: the agent writer flushes only when no more
// shard input is already buffered.
func (up *upstream) relay() {
	defer close(up.done)
	for {
		f, err := up.cli.Next()
		if err != nil {
			if !up.closing.Load() {
				up.fail()
			}
			return
		}
		switch fr := f.(type) {
		case wire.Verdict:
			up.c.writeFrame(fr)
			up.met.relayed.Inc()
		case wire.StreamSummary:
			cs := up.takeCloseState(fr.Stream)
			if cs.suppress {
				continue
			}
			fr.Shed += cs.shed
			fr.Samples += cs.short
			up.c.writeFrame(fr)
		case wire.Heartbeat:
			// Echo of a keepalive; nothing to relay.
		case wire.Error:
			// A shard-side error is a fleet-operations event, not an agent
			// protocol event: log it, mark the shard draining/dead so
			// streams reroute, and never forward it downstream.
			up.g.cfg.Log.Warn("upstream error frame", "shard", up.shard, "code", fr.Code, "msg", fr.Msg)
			if fr.Code == wire.CodeDraining || fr.Code == wire.CodeIdle {
				up.fail()
				return
			}
		}
		if up.cli.Buffered() == 0 {
			up.c.flush()
		}
	}
}

// fwdStream is one (agent, app) stream's routing state: which upstream it
// is placed on and under which membership epoch that placement was made.
type fwdStream struct {
	f     *forwarder
	id    uint32
	app   string
	key   string
	epoch uint64
	up    *upstream

	opened bool   // placed at least once (first placement counts as routed)
	sent   uint64 // samples forwarded, for summaries synthesized after shard death
	short  uint64 // samples the edge cascade answered without forwarding

	// edge-cascade per-app counters (set iff the connection runs the
	// cascade) and the reusable pass-through gather arenas.
	appShort  telemetry.Counter
	appPass   telemetry.Counter
	shortMask []bool
	fseqs     []uint32
	fats      []time.Time
	forigins  []int64
	fsamples  [][]float64
}

// ensureRoute returns the stream's live upstream, (re)placing it when the
// stream is unplaced, its shard died, or the membership epoch moved. A
// membership change that keeps the stream on its shard just adopts the
// new epoch; a change that moves it drains the old placement (CloseStream
// upstream, its summary suppressed) and opens on the new shard. Returns
// nil when no healthy shard can take the stream.
func (st *fwdStream) ensureRoute() *upstream {
	g := st.f.c.g
	cur := g.route()
	if st.up != nil && st.epoch == cur.epoch && !st.up.dead.Load() {
		return st.up
	}
	for attempt := 0; attempt < 2; attempt++ {
		cur = g.route()
		shard := cur.ring.Route(st.key)
		if st.up != nil && !st.up.dead.Load() {
			if st.up.shard == shard {
				st.epoch = cur.epoch
				return st.up
			}
			// Moved: close out the old placement and suppress its summary —
			// the agent gets exactly one summary, from the final shard.
			st.up.setCloseState(st.id, closeState{suppress: true})
			if err := st.up.cli.CloseStream(st.id); err != nil {
				st.up.fail()
			}
			g.drained.Inc()
		}
		st.up = nil
		if shard == "" {
			st.epoch = cur.epoch
			return nil
		}
		up, err := st.f.upstreamFor(shard)
		if err != nil {
			g.reportFailure(shard) // refresh the ring, then retry once
			continue
		}
		if err := up.cli.OpenStream(st.id, st.app); err != nil {
			up.fail()
			continue
		}
		if st.opened {
			g.rerouted.Inc()
		} else {
			st.opened = true
		}
		up.met.routed.Inc()
		if up.met.isCanary.Load() {
			g.canaryStreams.Inc()
		}
		st.up = up
		st.epoch = cur.epoch
		return up
	}
	return nil
}

// Process runs the edge cascade (when configured) and forwards the
// pass-through remainder to the stream's shard, rerouting and re-sending
// the whole batch once if the send hits a dead upstream. With no healthy
// shard the batch is dropped and counted; the agent connection survives.
// When the gateway traces, one sample per sampled forwarded batch gets a
// gateway-tier record attributing ring wait, the edge envelope pass,
// routing/assembly and the upstream write.
func (st *fwdStream) Process(b session.Batch) error {
	g := st.f.c.g
	fb, shortMask, stage0 := st.cascadeFilter(b)
	if sl := g.cfg.SampleLog; sl != nil {
		// Log arrivals at the fleet edge, before routing: replay wants the
		// traffic that reached the gateway, whether or not a shard was
		// healthy enough to score it. Forwarded samples have no verdict yet,
		// so their records are unscored (FlagScored clear) and backtests
		// skip them; edge-cascade short-circuits carry their synthesized
		// benign verdict.
		var version uint32
		if w := g.welcome.Load(); w != nil {
			version = w.ModelVersion
		}
		recs := make([]samplelog.Record, len(b.Samples))
		for i := range b.Samples {
			recs[i] = samplelog.Record{
				Nanos:        b.Ats[i].UnixNano(),
				Stream:       st.id,
				App:          st.app,
				ModelVersion: version,
				Features:     b.Samples[i],
			}
			if shortMask != nil && shortMask[i] {
				recs[i].Flags = samplelog.FlagScored | samplelog.FlagShortCircuit
				recs[i].Class = uint8(workload.Benign)
			}
		}
		sl.AppendBatch(recs)
	}
	if fb.Len() == 0 {
		return nil
	}
	traceIdx, traceID, traced := g.cfg.Tracer.SampleBatch(fb.Len())
	var sendStart time.Time
	if traced {
		sendStart = time.Now()
	}
	for attempt := 0; attempt < 2; attempt++ {
		up := st.ensureRoute()
		if up == nil {
			break
		}
		if err := st.sendBatch(up, fb); err != nil {
			up.fail()
			continue
		}
		st.sent += uint64(fb.Len())
		up.met.forwarded.Add(uint64(fb.Len()))
		if up.met.isCanary.Load() {
			g.canarySamples.Add(uint64(fb.Len()))
		}
		if traced {
			st.capture(fb, traceIdx, traceID, sendStart, stage0, up.shard)
		}
		return nil
	}
	g.dropped.Add(uint64(fb.Len()))
	return nil
}

// cascadeFilter runs the edge envelope over one batch. Short-circuited
// samples are answered on the spot — a synthesized benign Verdict with
// FlagShortCircuit written straight to the agent (flushed with the
// round) — and excluded from the returned batch. Returns the batch to
// forward (b itself when the cascade is off), the per-sample short mask
// (nil when off) and the wall time the pass took.
func (st *fwdStream) cascadeFilter(b session.Batch) (session.Batch, []bool, time.Duration) {
	c := st.f.c
	if c.cascade == nil {
		return b, nil, 0
	}
	g := c.g
	start := time.Now()
	n := b.Len()
	if cap(st.shortMask) < n {
		st.shortMask = make([]bool, n)
	}
	mask := st.shortMask[:n]
	st.fseqs = st.fseqs[:0]
	st.fats = st.fats[:0]
	st.forigins = st.forigins[:0]
	st.fsamples = st.fsamples[:0]
	shorts := 0
	for i, fv := range b.Samples {
		if c.cascade.Score(fv) <= c.cascadeThreshold {
			mask[i] = true
			shorts++
			c.writeFrame(wire.Verdict{
				Stream: st.id,
				Seq:    b.Seqs[i],
				Flags:  wire.FlagShortCircuit,
				Class:  uint8(workload.Benign),
			})
		} else {
			mask[i] = false
			st.fseqs = append(st.fseqs, b.Seqs[i])
			st.fats = append(st.fats, b.Ats[i])
			st.forigins = append(st.forigins, b.Origins[i])
			st.fsamples = append(st.fsamples, b.Samples[i])
		}
	}
	elapsed := time.Since(start)
	st.short += uint64(shorts)
	g.cascadeShort.Add(uint64(shorts))
	g.cascadePass.Add(uint64(n - shorts))
	st.appShort.Add(uint64(shorts))
	st.appPass.Add(uint64(n - shorts))
	g.cascadeNanos.Add(uint64(maxNanos(elapsed, 0)))
	g.cascadeSamples.Add(uint64(n))
	if shorts == 0 {
		return b, mask, elapsed
	}
	return session.Batch{
		Samples:   st.fsamples,
		Seqs:      st.fseqs,
		Ats:       st.fats,
		Origins:   st.forigins,
		DrainedAt: b.DrainedAt,
	}, mask, elapsed
}

// capture assembles the gateway-tier trace record for the sampled sample
// at batch index i: HopQueue is the ingress-ring wait, HopStage0 the edge
// envelope pass over the sample's batch (zero without a cascade),
// HopAssembly the drain→send grouping and routing, HopEmit the upstream
// write(s) (including any failover re-send). HopGateway and HopScore stay
// zero — the matching shard-tier record owns those.
func (st *fwdStream) capture(b session.Batch, i int, traceID uint64, sendStart time.Time, stage0 time.Duration, shard string) {
	g := st.f.c.g
	sendEnd := time.Now()
	at := b.Ats[i]
	rec := trace.Record{
		TraceID: traceID,
		Tier:    trace.TierGateway,
		App:     st.app,
		Shard:   shard,
		Stream:  st.id,
		Seq:     b.Seqs[i],
	}
	rec.Hops[trace.HopQueue] = maxNanos(b.DrainedAt.Sub(at), 0)
	rec.Hops[trace.HopStage0] = maxNanos(stage0, 0)
	rec.Hops[trace.HopAssembly] = maxNanos(sendStart.Sub(b.DrainedAt)-stage0, 0)
	rec.Hops[trace.HopEmit] = sendEnd.Sub(sendStart).Nanoseconds()
	for _, h := range rec.Hops {
		rec.TotalNanos += h
	}
	rec.StartNanos = sendEnd.UnixNano() - rec.TotalNanos
	g.cfg.Tracer.Add(rec)
}

func maxNanos(d time.Duration, floor int64) int64 {
	if n := d.Nanoseconds(); n > floor {
		return n
	}
	return floor
}

func (st *fwdStream) sendBatch(up *upstream, b session.Batch) error {
	for i := range b.Samples {
		// Stamp the gateway's ingress time (when its read loop accepted the
		// sample) onto the forwarded frame: the shard subtracts it from its
		// own ingress clock to attribute the gateway→shard hop.
		if err := up.cli.SendAt(st.id, b.Seqs[i], b.Ats[i].UnixNano(), b.Samples[i]); err != nil {
			return err
		}
	}
	return nil
}

// Close ends the stream: when its upstream is alive the shard's
// StreamSummary (with the gateway-side shed folded in) flows back through
// the relay; when the shard is gone the gateway synthesizes a summary
// from its own accounting so the agent still gets a closing record.
func (st *fwdStream) Close(shed uint64) error {
	up := st.up
	if up != nil && !up.dead.Load() {
		up.setCloseState(st.id, closeState{shed: shed, short: st.short})
		if err := up.cli.CloseStream(st.id); err == nil {
			return nil
		}
		up.takeCloseState(st.id)
		up.fail()
	}
	var version uint32
	if w := st.f.c.g.welcome.Load(); w != nil {
		version = w.ModelVersion
	}
	st.f.c.writeFrame(wire.StreamSummary{
		Stream:       st.id,
		ModelVersion: version,
		Samples:      st.sent + st.short,
		Shed:         shed,
	})
	return nil
}
