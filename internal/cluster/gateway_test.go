package cluster

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"testing"
	"time"

	"twosmart/internal/core"
	"twosmart/internal/corpus"
	"twosmart/internal/dataset"
	"twosmart/internal/serve"
	"twosmart/internal/telemetry"
	"twosmart/internal/wire"
)

var (
	fixOnce sync.Once
	fixDet  *core.Detector
	fixData *dataset.Dataset
	fixErr  error
)

// fixtures trains one tiny Common-4 detector for the whole package and
// keeps the corpus it was trained on as a sample source.
func fixtures(t *testing.T) (*core.Detector, *dataset.Dataset) {
	t.Helper()
	fixOnce.Do(func() {
		data, err := corpus.Collect(corpus.Config{
			Scale:       0.001,
			MinPerClass: 24,
			Budget:      30000,
			Seed:        7,
			Omniscient:  true,
		})
		if err != nil {
			fixErr = err
			return
		}
		fixData, err = data.SelectByName(core.CommonFeatures)
		if err != nil {
			fixErr = err
			return
		}
		fixDet, fixErr = core.Train(fixData, core.TrainConfig{Seed: 5})
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixDet, fixData
}

func quietLog() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

type testShard struct {
	addr    string
	reg     *telemetry.Registry
	cancel  context.CancelFunc
	done    chan error
	stopped bool
}

// kill drains the shard (the in-process equivalent of SIGTERM) and waits
// for Serve to return.
func (sh *testShard) kill(t *testing.T) {
	t.Helper()
	sh.cancel()
	sh.stopped = true
	select {
	case err := <-sh.done:
		if err != nil {
			t.Errorf("shard Serve: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Error("shard did not drain within 10s")
	}
}

func startShard(t *testing.T) *testShard {
	t.Helper()
	det, _ := fixtures(t)
	reg := telemetry.New()
	srv, err := serve.New(serve.Config{Detector: det, Telemetry: reg, Log: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	sh := &testShard{addr: addr.String(), reg: reg, cancel: cancel, done: make(chan error, 1)}
	go func() { sh.done <- srv.Serve(ctx) }()
	t.Cleanup(func() {
		if sh.stopped {
			return
		}
		cancel()
		select {
		case <-sh.done:
		case <-time.After(10 * time.Second):
		}
	})
	return sh
}

type testGateway struct {
	addr   string
	reg    *telemetry.Registry
	cancel context.CancelFunc
	done   chan error
}

func startGateway(t *testing.T, shards []string) *testGateway {
	return startGatewayWith(t, shards, nil)
}

// startGatewayWith boots a gateway whose Config was adjusted by tweak.
func startGatewayWith(t *testing.T, shards []string, tweak func(*Config)) *testGateway {
	t.Helper()
	reg := telemetry.New()
	cfg := Config{
		Shards:        shards,
		CheckInterval: 100 * time.Millisecond,
		DialTimeout:   2 * time.Second,
		Telemetry:     reg,
		Log:           quietLog(),
	}
	if tweak != nil {
		tweak(&cfg)
	}
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := gw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	tg := &testGateway{addr: addr.String(), reg: reg, cancel: cancel, done: make(chan error, 1)}
	go func() { tg.done <- gw.Serve(ctx) }()
	t.Cleanup(func() {
		cancel()
		select {
		case err := <-tg.done:
			if err != nil {
				t.Errorf("gateway Serve: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("gateway did not drain within 10s")
		}
	})
	return tg
}

func dialGateway(t *testing.T, tg *testGateway, agent string) *serve.Client {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := serve.Dial(ctx, tg.addr, agent)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// collect reads gateway frames until want summaries arrived, folding
// verdict counts into the caller's map. Any Error frame fails the test —
// the cluster contract is that shard-side trouble stays invisible to
// agents.
func collect(t *testing.T, c *serve.Client, verdicts map[uint32]int, want int) (summaries map[uint32]wire.StreamSummary) {
	t.Helper()
	summaries = make(map[uint32]wire.StreamSummary)
	for len(summaries) < want {
		f, err := c.Next()
		if err != nil {
			t.Fatalf("client read (have %d/%d summaries): %v", len(summaries), want, err)
		}
		switch fr := f.(type) {
		case wire.Verdict:
			verdicts[fr.Stream]++
		case wire.StreamSummary:
			summaries[fr.Stream] = fr
		case wire.Error:
			t.Fatalf("client-visible error frame: code %d: %s", fr.Code, fr.Msg)
		}
	}
	return summaries
}

// awaitVerdicts reads frames until every stream id in [0, streams) has at
// least one verdict, folding counts into verdicts. It proves each stream
// was placed on a shard and scored — the pre-kill barrier the failover
// test needs, since the client's writes race far ahead of the gateway's
// placement rounds.
func awaitVerdicts(t *testing.T, c *serve.Client, verdicts map[uint32]int, streams int) {
	t.Helper()
	covered := 0
	for _, n := range verdicts {
		if n > 0 {
			covered++
		}
	}
	for covered < streams {
		f, err := c.Next()
		if err != nil {
			t.Fatalf("client read (verdicts from %d/%d streams): %v", covered, streams, err)
		}
		switch fr := f.(type) {
		case wire.Verdict:
			if verdicts[fr.Stream] == 0 {
				covered++
			}
			verdicts[fr.Stream]++
		case wire.Error:
			t.Fatalf("client-visible error frame: code %d: %s", fr.Code, fr.Msg)
		}
	}
}

const (
	testAgent   = "gw-test-agent"
	testStreams = 16
)

func testApp(s int) string { return fmt.Sprintf("gwapp-%d", s) }

func sendWave(t *testing.T, c *serve.Client, data *dataset.Dataset, streams, from, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		for s := 0; s < streams; s++ {
			fv := data.Instances[(i*streams+s)%data.Len()].Features
			if err := c.Send(uint32(s), uint32(from+i), fv); err != nil {
				t.Fatalf("send: %v", err)
			}
		}
		if err := c.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
	}
}

// TestGatewayRoutesAcrossShards runs the full two-shard topology: every
// stream's verdicts come back through the gateway, summaries account for
// every sample, and traffic lands on the shards exactly where the
// consistent-hash ring predicts.
func TestGatewayRoutesAcrossShards(t *testing.T) {
	_, data := fixtures(t)
	sh1, sh2 := startShard(t), startShard(t)
	tg := startGateway(t, []string{sh1.addr, sh2.addr})
	c := dialGateway(t, tg, testAgent)

	const perStream = 40
	for s := 0; s < testStreams; s++ {
		if err := c.OpenStream(uint32(s), testApp(s)); err != nil {
			t.Fatal(err)
		}
	}
	sendWave(t, c, data, testStreams, 0, perStream)
	for s := 0; s < testStreams; s++ {
		if err := c.CloseStream(uint32(s)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	verdicts := make(map[uint32]int)
	summaries := collect(t, c, verdicts, testStreams)

	// Every sample is either scored (verdict relayed) or accounted shed.
	for s := 0; s < testStreams; s++ {
		sum, ok := summaries[uint32(s)]
		if !ok {
			t.Fatalf("no summary for stream %d", s)
		}
		if got := sum.Samples + sum.Shed; got != perStream {
			t.Fatalf("stream %d: scored %d + shed %d = %d, want %d", s, sum.Samples, sum.Shed, got, perStream)
		}
		if verdicts[uint32(s)] != int(sum.Samples) {
			t.Fatalf("stream %d: %d verdicts relayed, summary says %d scored", s, verdicts[uint32(s)], sum.Samples)
		}
	}

	// Placement matches the ring the load generator would predict with,
	// and with 16 streams both shards all but surely carry traffic.
	ring := BuildRing([]string{sh1.addr, sh2.addr}, DefaultReplicas)
	predicted := map[string]uint64{}
	for s := 0; s < testStreams; s++ {
		predicted[ring.Route(RouteKey(testAgent, testApp(s)))] += uint64(summaries[uint32(s)].Samples)
	}
	for _, sh := range []*testShard{sh1, sh2} {
		scored := sh.reg.Counter("serve_verdicts_total").Value()
		if scored != predicted[sh.addr] {
			t.Fatalf("shard %s scored %d samples, ring predicts %d", sh.addr, scored, predicted[sh.addr])
		}
		if scored == 0 {
			t.Fatalf("shard %s carried no traffic; consistent-hash spread failed (predicted %v)", sh.addr, predicted)
		}
	}
}

// TestGatewayReroutesOnShardDeath kills one shard mid-run and requires
// that agents see zero connection errors: every stream still gets its
// summary, the survivors' traffic continues, and the gateway counts the
// reroutes.
func TestGatewayReroutesOnShardDeath(t *testing.T) {
	_, data := fixtures(t)
	sh1, sh2 := startShard(t), startShard(t)
	tg := startGateway(t, []string{sh1.addr, sh2.addr})
	c := dialGateway(t, tg, testAgent)

	for s := 0; s < testStreams; s++ {
		if err := c.OpenStream(uint32(s), testApp(s)); err != nil {
			t.Fatal(err)
		}
	}
	// Wave 1 with the full fleet. Wait for a verdict from every stream
	// before the kill: the agent's writes race far ahead of the gateway's
	// placement rounds, and the reroute counter is only meaningful for
	// streams that actually lived on the dead shard first.
	sendWave(t, c, data, testStreams, 0, 30)
	verdicts := make(map[uint32]int)
	awaitVerdicts(t, c, verdicts, testStreams)
	preKill := make(map[uint32]int, len(verdicts))
	for s, n := range verdicts {
		preKill[s] = n
	}
	sh1.kill(t) // SIGTERM-equivalent on shard 1

	// Wave 2: streams that lived on the dead shard must drain onto the
	// survivor without the agent noticing anything but a monitor reset.
	// Several waves with small pauses give the gateway's failure detection
	// (relay errors + health probes every 100ms) time to converge while
	// traffic keeps flowing.
	for wave := 0; wave < 5; wave++ {
		sendWave(t, c, data, testStreams, 30+wave*10, 10)
		time.Sleep(150 * time.Millisecond)
	}
	for s := 0; s < testStreams; s++ {
		if err := c.CloseStream(uint32(s)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	summaries := collect(t, c, verdicts, testStreams)
	if len(summaries) != testStreams {
		t.Fatalf("got %d summaries, want %d", len(summaries), testStreams)
	}

	// The ring routed some of the 16 streams to the dead shard (the
	// balance test makes all-on-one-shard astronomically unlikely); those
	// must have been rerouted, and their post-death samples scored on the
	// survivor — more verdicts than they had before the kill.
	ring := BuildRing([]string{sh1.addr, sh2.addr}, DefaultReplicas)
	movedStreams := 0
	for s := 0; s < testStreams; s++ {
		if ring.Route(RouteKey(testAgent, testApp(s))) == sh1.addr {
			movedStreams++
			if verdicts[uint32(s)] <= preKill[uint32(s)] {
				t.Errorf("stream %d lived on the dead shard and got no verdict after reroute (pre-kill %d, total %d)",
					s, preKill[uint32(s)], verdicts[uint32(s)])
			}
		}
	}
	if movedStreams == 0 {
		t.Skip("hash placed no stream on the killed shard; nothing to assert")
	}
	if rerouted := tg.reg.Counter("cluster_streams_rerouted_total").Value(); rerouted == 0 {
		t.Error("cluster_streams_rerouted_total = 0 after shard death")
	}
	if changes := tg.reg.Counter("cluster_membership_changes_total").Value(); changes == 0 {
		t.Error("cluster_membership_changes_total = 0 after shard death")
	}
	if healthy := tg.reg.Gauge("cluster_shards_healthy").Value(); healthy != 1 {
		t.Errorf("cluster_shards_healthy = %v, want 1", healthy)
	}
}

// TestGatewayNoShards: with the whole fleet down the gateway refuses
// agent handshakes with CodeUnavailable instead of hanging or crashing.
func TestGatewayNoShards(t *testing.T) {
	// A listener that is immediately closed: a configured but dead shard.
	sh := startShard(t)
	sh.kill(t)
	tg := startGateway(t, []string{sh.addr})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := serve.Dial(ctx, tg.addr, "lonely-agent")
	if err == nil {
		t.Fatal("handshake succeeded with no healthy shard")
	}
}

// TestGatewayCanaryLabeling exercises the version-feed → canary-split
// relabeling directly: the baseline is the version most healthy shards
// report (ties break toward the older version), every healthy shard on
// a different version is a canary, and the agent-facing Welcome
// template tracks the baseline.
func TestGatewayCanaryLabeling(t *testing.T) {
	shards := []string{"10.0.0.1:1", "10.0.0.2:1", "10.0.0.3:1"}
	reg := telemetry.New()
	gw, err := New(Config{
		Shards:        shards,
		CheckInterval: time.Hour, // health loop never runs; the test drives the feed
		DialTimeout:   time.Second,
		Telemetry:     reg,
		Log:           quietLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	gw.mu.Lock()
	for _, s := range shards {
		gw.up[s] = true
	}
	gw.mu.Unlock()
	gw.welcome.Store(&wire.Welcome{Proto: wire.ProtoVersion, ModelVersion: 1})

	canaryOf := func(s string) float64 {
		return reg.Gauge(telemetry.Label("cluster_shard_canary", "shard", s)).Value()
	}
	versionOf := func(s string) float64 {
		return reg.Gauge(telemetry.Label("cluster_shard_model_version", "shard", s)).Value()
	}

	// Pre-registry echoes (version 0) are ignored entirely.
	gw.observeVersion(shards[0], 0)
	if got := versionOf(shards[0]); got != 0 {
		t.Fatalf("version gauge after v0 echo = %v, want 0", got)
	}

	// Uniform fleet: no canary anywhere.
	for _, s := range shards {
		gw.observeVersion(s, 1)
	}
	for _, s := range shards {
		if canaryOf(s) != 0 {
			t.Errorf("uniform fleet: shard %s labeled canary", s)
		}
	}

	// One shard pinned to a newer candidate: it alone is the canary and
	// its version gauge follows the echo.
	gw.observeVersion(shards[2], 2)
	if got := versionOf(shards[2]); got != 2 {
		t.Errorf("version gauge = %v, want 2", got)
	}
	if canaryOf(shards[2]) != 1 {
		t.Error("pinned shard not labeled canary")
	}
	if canaryOf(shards[0]) != 0 || canaryOf(shards[1]) != 0 {
		t.Error("baseline shard labeled canary")
	}
	if w := gw.welcome.Load(); w.ModelVersion != 1 {
		t.Errorf("welcome ModelVersion = %d, want baseline 1", w.ModelVersion)
	}

	// Even 1-vs-1 split (third shard down): the tie breaks toward the
	// older version, so the newer shard stays the canary; the down shard
	// is never a canary regardless of its last echo.
	gw.mu.Lock()
	gw.up[shards[1]] = false
	gw.mu.Unlock()
	gw.observeVersion(shards[2], 2) // same version: no-op fast path
	gw.mu.Lock()
	gw.recomputeCanaryLocked()
	gw.mu.Unlock()
	if canaryOf(shards[2]) != 1 {
		t.Error("tie split: newer shard lost canary label")
	}
	if canaryOf(shards[1]) != 0 {
		t.Error("down shard labeled canary")
	}

	// Widen lands: the whole fleet reports the candidate, the canary
	// label clears and the Welcome template moves to the new baseline.
	gw.mu.Lock()
	gw.up[shards[1]] = true
	gw.mu.Unlock()
	gw.observeVersion(shards[0], 2)
	gw.observeVersion(shards[1], 2)
	for _, s := range shards {
		if canaryOf(s) != 0 {
			t.Errorf("post-widen: shard %s still labeled canary", s)
		}
	}
	if w := gw.welcome.Load(); w.ModelVersion != 2 {
		t.Errorf("post-widen welcome ModelVersion = %d, want 2", w.ModelVersion)
	}
}
