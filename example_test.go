package twosmart_test

import (
	"fmt"

	"twosmart"
)

// The four Common HPC events are the features a 4-register machine can
// collect in a single run — the heart of the paper's run-time argument.
func ExampleCommonFeatures() {
	for _, name := range twosmart.CommonFeatures() {
		fmt.Println(name)
	}
	// Output:
	// branch-instructions
	// cache-references
	// branch-misses
	// node-stores
}

// Each malware class extends the Common four with its own Custom four
// (the paper's Table II).
func ExampleCustomFeatures() {
	feats, err := twosmart.CustomFeatures(twosmart.Virus)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, name := range feats[4:] { // the class-specific half
		fmt.Println(name)
	}
	// Output:
	// LLC-loads
	// L1-dcache-loads
	// L1-dcache-stores
	// iTLB-load-misses
}

// The corpus mirrors the paper's population and class imbalance.
func ExampleCollectConfig() {
	cfg := twosmart.CollectConfig{Scale: 1.0}
	counts := cfg.Counts()
	fmt.Println("backdoor:", counts[twosmart.Backdoor])
	fmt.Println("rootkit:", counts[twosmart.Rootkit])
	fmt.Println("virus:", counts[twosmart.Virus])
	fmt.Println("trojan:", counts[twosmart.Trojan])
	// Output:
	// backdoor: 452
	// rootkit: 350
	// virus: 650
	// trojan: 1169
}
