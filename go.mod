module twosmart

go 1.22
